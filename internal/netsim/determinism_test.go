package netsim

import (
	"fmt"
	"strings"
	"testing"

	"f4t/internal/sim"
	"f4t/internal/wire"
)

// The fault injectors must be invariant to how the kernel advances time:
// a run on the quiescence-skipping kernel and a run on the historical
// always-step shadow loop must drop, mark, reorder and duplicate exactly
// the same packets and deliver the survivors on exactly the same cycles.
// Sends are driven by kernel timers with long idle gaps so the skipping
// run actually fast-forwards (asserted), rather than degenerating into
// stepping every cycle.

// dormantSleeper stands in for an idle engine: a Sleeper with no
// self-generated work. The kernel only engages cycle skipping when every
// registered ticker is a Sleeper (a timer-only kernel never counts
// skips), so the rig needs one for the skipped>0 assertion to mean
// anything.
type dormantSleeper struct{}

func (dormantSleeper) Tick(int64) {}

func (dormantSleeper) NextWork(int64) int64 { return sim.Dormant }

// faultRun sends n packets at sparse timer-scheduled cycles through a
// pipe with the given fault profile and returns a textual schedule of
// every delivery plus the final fault counters.
func faultRun(k *sim.Kernel, f Faults, n int) (string, int64) {
	k.Register(dormantSleeper{})
	var log []string
	p := NewPipe(k, 100, 600, 77, func(pkt *wire.Packet) {
		log = append(log, fmt.Sprintf("d %d %d", k.Now(), pkt.PayloadLen))
	})
	p.SetFaults(f)
	for i := 0; i < n; i++ {
		seq := i
		// 1500-cycle gaps: far longer than serialization + propagation,
		// so the kernel is provably idle between consecutive sends.
		k.At(int64(i)*1_500, func() { p.Send(tcpPkt(seq)) })
	}
	k.Run(int64(n)*1_500 + 10_000)
	log = append(log, fmt.Sprintf("sent=%d dropped=%d reorder=%d dup=%d marked=%d",
		p.SentPkts, p.DroppedPkts, p.ReorderPkts, p.DupPkts, p.MarkedPkts))
	return strings.Join(log, "\n"), k.SkippedCycles()
}

func TestFaultScheduleInvariantUnderSkipping(t *testing.T) {
	cases := []struct {
		name string
		f    Faults
	}{
		{"drop-once", Faults{DropOnce: 7}},
		{"drop-every", Faults{DropEvery: 5}},
		{"reorder", Faults{ReorderProb: 0.5, ReorderNS: 20_000}},
		{"mixed", Faults{DropEvery: 9, DupProb: 0.3, ReorderProb: 0.3, ReorderNS: 8_000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 40
			skip, skipped := faultRun(sim.New(), tc.f, n)
			shadow, _ := faultRun(sim.NewShadow(), tc.f, n)
			if skip != shadow {
				t.Fatalf("fault schedule diverged between skip and shadow kernels:\nskip:\n%s\nshadow:\n%s", skip, shadow)
			}
			if skipped == 0 {
				t.Fatal("skipping kernel skipped 0 cycles — the test never exercised the fast path")
			}
			// Sanity: the profile actually fired.
			if strings.Contains(skip, "dropped=0 reorder=0 dup=0 marked=0") {
				t.Fatalf("no faults fired:\n%s", skip)
			}
		})
	}
}

// TestDropScheduleExactOrdinals pins the deterministic injectors to their
// contract: DropOnce kills exactly the Nth packet, DropEvery kills every
// Nth, independent of kernel mode.
func TestDropScheduleExactOrdinals(t *testing.T) {
	for _, mk := range []struct {
		name string
		k    func() *sim.Kernel
	}{{"skip", sim.New}, {"shadow", sim.NewShadow}} {
		t.Run(mk.name, func(t *testing.T) {
			k := mk.k()
			var got []int
			p := NewPipe(k, 100, 0, 1, func(pkt *wire.Packet) { got = append(got, pkt.PayloadLen) })
			p.SetFaults(Faults{DropOnce: 3, DropEvery: 10})
			for i := 1; i <= 30; i++ {
				seq := i
				k.At(int64(i)*500, func() { p.Send(tcpPkt(seq)) })
			}
			k.Run(20_000)
			// Packet 3 (DropOnce) and packets 10, 20, 30 (DropEvery) die.
			want := map[int]bool{3: true, 10: true, 20: true, 30: true}
			if len(got) != 30-len(want) {
				t.Fatalf("delivered %d packets, want %d", len(got), 30-len(want))
			}
			for _, seq := range got {
				if want[seq] {
					t.Fatalf("packet %d delivered despite drop schedule", seq)
				}
			}
			if p.DroppedPkts != int64(len(want)) {
				t.Fatalf("dropped = %d, want %d", p.DroppedPkts, len(want))
			}
		})
	}
}

// TestReorderScheduleInvariant checks that the reordered-packet *set* and
// the resulting delivery permutation agree between kernel modes even when
// reordering interleaves with normal traffic.
func TestReorderScheduleInvariant(t *testing.T) {
	run := func(k *sim.Kernel) string {
		var order []string
		p := NewPipe(k, 100, 600, 5, func(pkt *wire.Packet) {
			order = append(order, fmt.Sprintf("%d@%d", pkt.PayloadLen, k.Now()))
		})
		p.SetFaults(Faults{ReorderProb: 0.4, ReorderNS: 30_000})
		for i := 0; i < 50; i++ {
			seq := i
			k.At(int64(i)*2_000, func() { p.Send(tcpPkt(seq)) })
		}
		k.Run(150_000)
		return fmt.Sprintf("%v reorders=%d", order, p.ReorderPkts)
	}
	a := run(sim.New())
	b := run(sim.NewShadow())
	if a != b {
		t.Fatalf("reorder schedule diverged:\nskip:   %s\nshadow: %s", a, b)
	}
	if strings.Contains(a, "reorders=0") {
		t.Fatal("no reorders fired — seed 5 with p=0.4 over 50 packets should reorder some")
	}
}
