package netsim

import (
	"testing"

	"f4t/internal/wire"
)

// The AQM unit tests run the discipline state machines against
// hand-computed sequences: RED here is the deterministic count-based
// variant (every ceil(1/p_b)-th packet of the congested band acts), and
// CoDel's control law is deterministic by construction, so every
// decision below is arithmetic, not statistics.

func TestParseAQM(t *testing.T) {
	for i, name := range AQMNames() {
		k, err := ParseAQM(name)
		if err != nil || int(k) != i {
			t.Fatalf("ParseAQM(%q) = %v, %v", name, k, err)
		}
		if k.String() != name {
			t.Fatalf("String() = %q, want %q", k.String(), name)
		}
	}
	if _, err := ParseAQM("fq-pie"); err == nil {
		t.Fatal("ParseAQM accepted an unknown discipline")
	}
}

func TestDropTailLimit(t *testing.T) {
	a := newAQM(DropTail(100))
	if v := a.admitEnqueue(90, 10, 0, false); v != admitPass {
		t.Fatalf("fits exactly: got %v", v)
	}
	if v := a.admitEnqueue(95, 10, 0, false); v != admitDrop {
		t.Fatalf("overflow: got %v", v)
	}
	if v := a.admitEnqueue(0, 10, 0, false); v != admitPass {
		t.Fatalf("empty queue: got %v", v)
	}
}

func TestThresholdMarking(t *testing.T) {
	a := newAQM(ECNThreshold(1_000, 0))
	if v := a.admitEnqueue(0, 10, 500, true); v != admitPass {
		t.Fatalf("below threshold: got %v", v)
	}
	if v := a.admitEnqueue(0, 10, 1_001, true); v != admitMark {
		t.Fatalf("above threshold, ECT: got %v", v)
	}
	// Not-ECT traffic is never marked by the step threshold — it passes
	// (the byte limit still protects the queue).
	if v := a.admitEnqueue(0, 10, 1_001, false); v != admitPass {
		t.Fatalf("above threshold, not-ECT: got %v", v)
	}
}

// redCfg is the hand-computable RED configuration: weight shift 0 makes
// the EWMA track the instantaneous depth exactly, min 100 B, max 300 B,
// maxP 0.5, so p_b = 0.5*(q-100)/200 and the deterministic variant acts
// when count*p_b reaches 1.
func redCfg(ecn bool) AQMConfig {
	return AQMConfig{
		Kind: AQMRED, ECN: ecn,
		REDMinBytes: 100, REDMaxBytes: 300, REDMaxP: 0.5, REDWeightShift: 0,
	}
}

func TestREDHandComputedSequence(t *testing.T) {
	a := newAQM(redCfg(false))
	steps := []struct {
		q    int64
		want verdict
	}{
		{50, admitPass},  // avg 50 < min: count reset
		{100, admitPass}, // p_b = 0, count 1
		{200, admitPass}, // p_b 0.25, count 2: 0.50 < 1
		{200, admitPass}, // count 3: 0.75 < 1
		{200, admitDrop}, // count 4: 1.00 >= 1 -> act, count reset
		{200, admitPass}, // count 1: 0.25 < 1
		{300, admitDrop}, // avg >= max: forced
		{90, admitPass},  // back below min
	}
	for i, s := range steps {
		if v := a.admitEnqueue(s.q, 10, 0, false); v != s.want {
			t.Fatalf("step %d (q=%d): got %v want %v", i, s.q, v, s.want)
		}
	}
}

func TestREDMarksWhenECN(t *testing.T) {
	a := newAQM(redCfg(true))
	// Same arithmetic as above: the 4th in-band arrival acts, but as a
	// CE mark because the packet is ECN-capable.
	for i := 0; i < 3; i++ {
		if v := a.admitEnqueue(200, 10, 0, true); v != admitPass {
			t.Fatalf("arrival %d: got %v", i, v)
		}
	}
	if v := a.admitEnqueue(200, 10, 0, true); v != admitMark {
		t.Fatalf("4th arrival: got %v, want mark", v)
	}
	// A not-ECT packet in the same situation must be dropped instead.
	a2 := newAQM(redCfg(true))
	for i := 0; i < 3; i++ {
		a2.admitEnqueue(200, 10, 0, false)
	}
	if v := a2.admitEnqueue(200, 10, 0, false); v != admitDrop {
		t.Fatalf("not-ECT 4th arrival: got %v, want drop", v)
	}
}

func TestREDEWMASmoothes(t *testing.T) {
	cfg := redCfg(false)
	cfg.REDWeightShift = 3 // avg moves 1/8th of the gap per arrival
	a := newAQM(cfg)
	// One 800 B burst arrival after a long idle queue: avg only reaches
	// 100 (800/8), still below... exactly at min. Next arrival at q=0
	// decays it back. No action either time.
	if v := a.admitEnqueue(800, 10, 0, false); v != admitPass {
		t.Fatalf("burst arrival acted at avg=%d", a.avgShifted>>3)
	}
	if got := a.avgShifted >> 3; got != 100 {
		t.Fatalf("avg after burst = %d, want 100", got)
	}
	if v := a.admitEnqueue(0, 10, 0, false); v != admitPass {
		t.Fatalf("decay arrival acted")
	}
	if got := a.avgShifted >> 3; got != 87 { // 800 + (0 - 100) = 700 -> avg floor(87.5)
		t.Fatalf("avg after decay = %d, want 87", got)
	}
}

func TestCoDelHandComputedSequence(t *testing.T) {
	cfg := AQMConfig{Kind: AQMCoDel, CoDelTargetNS: 100, CoDelIntervalNS: 1000}
	a := newAQM(cfg)
	steps := []struct {
		now, sojourn int64
		want         verdict
	}{
		{0, 50, admitPass},     // below target
		{100, 150, admitPass},  // above: arm firstAbove = 1100
		{500, 200, admitPass},  // still inside the interval
		{1100, 200, admitDrop}, // interval elapsed: enter dropping, count 1, next 2100
		{1200, 150, admitPass}, // before dropNext
		{2100, 150, admitDrop}, // count 2, next 2100+707 = 2807
		{2807, 150, admitDrop}, // count 3, next 2807+577 = 3384
		{3000, 50, admitPass},  // sojourn recovered: leave dropping
		{3100, 150, admitPass}, // re-arm firstAbove = 4100
		{4100, 150, admitDrop}, // recent dropping (4100-3384 < 1000) and
		{4100, 150, admitPass}, //   count 3-2 = 1 resumed: next 4100+1000
	}
	for i, s := range steps {
		if v := a.admitDequeue(s.now, s.sojourn, 1_000, false); v != s.want {
			t.Fatalf("step %d (now=%d sojourn=%d): got %v want %v", i, s.now, s.sojourn, v, s.want)
		}
	}
}

func TestCoDelMarksWhenECN(t *testing.T) {
	cfg := AQMConfig{Kind: AQMCoDel, ECN: true, CoDelTargetNS: 100, CoDelIntervalNS: 1000}
	a := newAQM(cfg)
	a.admitDequeue(100, 150, 1_000, true) // arm
	if v := a.admitDequeue(1100, 200, 1_000, true); v != admitMark {
		t.Fatalf("ECT packet at control-law firing: got %v, want mark", v)
	}
	// The same firing against a not-ECT packet drops.
	a2 := newAQM(cfg)
	a2.admitDequeue(100, 150, 1_000, false)
	if v := a2.admitDequeue(1100, 200, 1_000, false); v != admitDrop {
		t.Fatalf("not-ECT packet at control-law firing: got %v, want drop", v)
	}
}

func TestCoDelDrainDryResets(t *testing.T) {
	cfg := AQMConfig{Kind: AQMCoDel, CoDelTargetNS: 100, CoDelIntervalNS: 1000}
	a := newAQM(cfg)
	a.admitDequeue(0, 150, 1_000, false) // arm at 1000
	// Sojourn still high but the queue just went empty: CoDel resets,
	// because a dry queue cannot be a standing queue.
	if v := a.admitDequeue(1500, 150, 0, false); v != admitPass {
		t.Fatalf("dry queue: got %v", v)
	}
	if a.firstAbove != 0 {
		t.Fatalf("firstAbove not reset: %d", a.firstAbove)
	}
}

func TestMarkCECopies(t *testing.T) {
	pkt := &wire.Packet{Kind: wire.KindTCP}
	pkt.IP.ECN = wire.ECNECT0
	if !ecnCapable(pkt) {
		t.Fatal("ECT0 packet not ECN-capable")
	}
	m := markCE(pkt)
	if m.IP.ECN != wire.ECNCE {
		t.Fatal("copy not CE-marked")
	}
	if pkt.IP.ECN != wire.ECNECT0 {
		t.Fatal("original mutated — aliased duplicates would lose ECT")
	}
	if ecnCapable(&wire.Packet{Kind: wire.KindARP}) {
		t.Fatal("ARP reported ECN-capable")
	}
}
