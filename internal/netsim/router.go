package netsim

import (
	"f4t/internal/sim"
	"f4t/internal/telemetry"
	"f4t/internal/wire"
)

// Router is an output-queued switch: packets arriving on any ingress are
// looked up by destination IP and handed to the egress RouterPort, whose
// queue discipline (AQMConfig) decides drops and ECN marks. The router
// itself holds no queue and no clock — all contention lives in the
// ports, which is the standard output-queued switch model and the one
// the paper's DCTCP/incast results presuppose.
//
// forward only mutates port state and wakes the port's kernel, so it is
// safe to call from a cross-shard mailbox delivery (where scheduling a
// local timer would panic); the port's own Tick, running under its own
// registration slot, does the serialization and delivery scheduling.
type Router struct {
	Name   string
	ports  []*RouterPort
	routes map[wire.Addr]*RouterPort

	// Stats.
	FwdPkts     int64 // packets matched to an egress port
	NoRoutePkts int64 // packets with no route (dropped silently)
}

// NewRouter returns an empty router; AttachNodeOn / ConnectRoutersOn add
// ports, and Route installs forwarding entries.
func NewRouter(name string) *Router {
	return &Router{Name: name, routes: make(map[wire.Addr]*RouterPort)}
}

// Route installs (or replaces) the egress port for a destination.
func (r *Router) Route(dst wire.Addr, p *RouterPort) { r.routes[dst] = p }

// Ports returns the router's egress ports in attachment order.
func (r *Router) Ports() []*RouterPort { return r.ports }

// forward looks up the egress port and enqueues. It is the sink of
// every ingress pipe and trunk port pointed at this router.
func (r *Router) forward(pkt *wire.Packet) {
	p := r.routes[pkt.IP.Dst]
	if p == nil {
		r.NoRoutePkts++
		return
	}
	r.FwdPkts++
	p.enqueue(pkt)
}

// Forward exposes the routing step as a packet sink (ingress pipes
// attach via SetSink(router.Forward)).
func (r *Router) Forward(pkt *wire.Packet) { r.forward(pkt) }

// Instrument registers the router's counters and every port's queue
// telemetry under prefix. Safe on a nil registry.
func (r *Router) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+".fwd_pkts", func() int64 { return r.FwdPkts })
	reg.Gauge(prefix+".noroute_pkts", func() int64 { return r.NoRoutePkts })
	for _, p := range r.ports {
		p.Instrument(reg, prefix+"."+p.Name)
	}
}

// portPkt is one queued packet with its enqueue cycle (CoDel sojourn).
type portPkt struct {
	pkt     *wire.Packet
	wireLen int64
	enqAt   int64
}

// RouterPort is one egress port: an explicit FIFO governed by an AQM
// discipline, drained through a ByteRate serializer into a propagation
// delay, delivering to the attached sink (the next hop's DeliverPacket
// or a peer router's Forward). It implements sim.Sleeper on the
// router's island kernel; deliveries cross islands through the Poster
// the topology builder obtained from the fabric, so the same port works
// serially, with cycle skipping, and sharded.
type RouterPort struct {
	Name string

	k         *sim.Kernel
	post      sim.Poster
	deliverFn func(any)
	rate      *sim.ByteRate
	prop      int64 // propagation delay in cycles
	sink      func(*wire.Packet)
	disc      aqm

	q         []portPkt
	head      int
	qBytes    int64
	busyUntil int64 // serializer-free cycle; 0 when idle
	tap       Tap   // frame observer (pcap capture); nil when off

	// Stats. FirstCongCycle records the first drop or mark (-1 until
	// one happens) — the "onset" the AQM comparison tests assert on.
	EnqPkts        int64
	DeqPkts        int64
	TailDrops      int64 // queue-limit overflows
	AQMDrops       int64 // early drops (RED band, CoDel law)
	MarkedPkts     int64 // CE marks applied
	PeakQBytes     int64
	PeakQPkts      int64
	FirstCongCycle int64
}

// newRouterPort builds a port on the router island's kernel. post
// schedules deliveries toward the destination island (the kernel itself
// when both share a shard).
func newRouterPort(k *sim.Kernel, post sim.Poster, name string, gbps, propNS int64, cfg AQMConfig) *RouterPort {
	p := &RouterPort{
		Name:           name,
		k:              k,
		post:           post,
		rate:           sim.GbpsRate(gbps),
		prop:           sim.NSToCycles(propNS),
		disc:           newAQM(cfg),
		FirstCongCycle: -1,
	}
	p.deliverFn = func(arg any) { p.sink(arg.(*wire.Packet)) }
	return p
}

// SetSink attaches the delivery callback (endpoints attach after
// topology construction, like Pipe.SetSink).
func (p *RouterPort) SetSink(deliver func(*wire.Packet)) { p.sink = deliver }

// SetTap installs a frame observer (nil to remove). Drops are tapped
// at decision time (enqueue or dequeue), sends when serialization
// starts, both with the port's marks applied.
func (p *RouterPort) SetTap(t Tap) { p.tap = t }

// QueuedBytes returns the current queue depth in bytes (excluding the
// packet being serialized).
func (p *RouterPort) QueuedBytes() int64 { return p.qBytes }

// QueuedPkts returns the current queue depth in packets.
func (p *RouterPort) QueuedPkts() int64 { return int64(len(p.q) - p.head) }

// Drops returns total drops from any cause.
func (p *RouterPort) Drops() int64 { return p.TailDrops + p.AQMDrops }

// congestion records a drop/mark event cycle for onset assertions.
func (p *RouterPort) congestion() {
	if p.FirstCongCycle < 0 {
		p.FirstCongCycle = p.k.Now()
	}
}

// enqueue admits one packet into the output queue. Cross-shard safe:
// it only mutates port state and wakes the port — the delivery timer is
// scheduled by Tick, which runs under the port's own slot.
func (p *RouterPort) enqueue(pkt *wire.Packet) {
	now := p.k.Now()
	wireLen := int64(pkt.WireLen())
	// Queueing delay the arrival would see: the in-flight packet's
	// remaining serialization plus the queued bytes ahead of it.
	qDelayNS := (p.rate.Backlog(now) + p.rate.CyclesFor(p.qBytes)) * sim.CycleNS
	switch p.disc.admitEnqueue(p.qBytes, wireLen, qDelayNS, ecnCapable(pkt)) {
	case admitDrop:
		// Tail drops and early drops are told apart by whether the
		// arrival would have fit under the byte limit.
		note := TapDropAQM
		if p.disc.cfg.LimitBytes > 0 && p.qBytes+wireLen > p.disc.cfg.LimitBytes {
			p.TailDrops++
			note = TapDropTail
		} else {
			p.AQMDrops++
		}
		p.congestion()
		if p.tap != nil {
			p.tap(now*sim.CycleNS, pkt, note)
		}
		return
	case admitMark:
		pkt = markCE(pkt)
		p.MarkedPkts++
		p.congestion()
	}
	p.EnqPkts++
	p.q = append(p.q, portPkt{pkt: pkt, wireLen: wireLen, enqAt: now})
	p.qBytes += wireLen
	if p.qBytes > p.PeakQBytes {
		p.PeakQBytes = p.qBytes
	}
	if n := p.QueuedPkts(); n > p.PeakQPkts {
		p.PeakQPkts = n
	}
	p.k.Wake(p)
}

// Tick implements sim.Ticker: when the serializer is free, pop the head
// packet, run the dequeue-side discipline (CoDel), serialize it, and
// schedule delivery after propagation. At most one packet starts
// serializing per Tick — NextWork re-arms the port at busyUntil, so the
// drain costs one step per packet, not one per cycle.
func (p *RouterPort) Tick(cycle int64) {
	for p.busyUntil <= cycle && p.head < len(p.q) {
		e := p.q[p.head]
		p.head++
		p.qBytes -= e.wireLen
		sojournNS := (cycle - e.enqAt) * sim.CycleNS
		note := TapSent
		switch p.disc.admitDequeue(cycle*sim.CycleNS, sojournNS, p.qBytes, ecnCapable(e.pkt)) {
		case admitDrop:
			p.AQMDrops++
			p.congestion()
			if p.tap != nil {
				p.tap(cycle*sim.CycleNS, e.pkt, TapDropAQM)
			}
			continue // examine the next head this same cycle
		case admitMark:
			e.pkt = markCE(e.pkt)
			p.MarkedPkts++
			p.congestion()
			note |= TapMarkCE
		}
		p.DeqPkts++
		done := p.rate.Reserve(cycle, e.wireLen)
		p.busyUntil = done
		if p.tap != nil {
			p.tap(cycle*sim.CycleNS, e.pkt, note)
		}
		p.post.AtCall(done+p.prop, p.deliverFn, e.pkt)
	}
	if p.head == len(p.q) {
		// Queue drained: reset the ring so append stops growing it.
		p.q = p.q[:0]
		p.head = 0
	} else if p.head > 64 && p.head*2 >= len(p.q) {
		p.q = append(p.q[:0], p.q[p.head:]...)
		p.head = 0
	}
}

// NextWork implements sim.Sleeper: dormant when empty (arrivals Wake
// it), else the cycle the serializer frees up.
func (p *RouterPort) NextWork(now int64) int64 {
	if p.head >= len(p.q) {
		return sim.Dormant
	}
	if p.busyUntil <= now {
		return now + 1
	}
	return p.busyUntil
}

// Instrument registers the port's queue depth, drops and marks under
// prefix (e.g. "sw0.node0"). Safe on a nil registry.
func (p *RouterPort) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+".q_bytes", func() int64 { return p.qBytes })
	reg.Gauge(prefix+".q_pkts", func() int64 { return p.QueuedPkts() })
	reg.Gauge(prefix+".peak_q_bytes", func() int64 { return p.PeakQBytes })
	reg.Gauge(prefix+".enq_pkts", func() int64 { return p.EnqPkts })
	reg.Gauge(prefix+".deq_pkts", func() int64 { return p.DeqPkts })
	reg.Gauge(prefix+".tail_drops", func() int64 { return p.TailDrops })
	reg.Gauge(prefix+".aqm_drops", func() int64 { return p.AQMDrops })
	reg.Gauge(prefix+".marked_pkts", func() int64 { return p.MarkedPkts })
}
