package netsim

import (
	"fmt"
	"math"
	"strings"

	"f4t/internal/wire"
)

// This file holds the active-queue-management disciplines a RouterPort
// (and, for the threshold-marking subset, a Pipe) applies to its output
// queue, plus the single ECN marking implementation every path in the
// package shares. All decisions are deterministic: RED uses the
// count-based variant (drop exactly every ceil(1/p_b)-th packet of the
// congested band) instead of a random draw, and CoDel's control law is
// already deterministic, so the same packet arrival sequence always
// produces the same drop/mark sequence — the property the differential
// battery and the hand-computed unit tests depend on.

// AQMKind selects a queue discipline.
type AQMKind int

const (
	// AQMDropTail is a plain FIFO with a byte limit; arrivals that would
	// overflow it are dropped. Combined with MarkThresholdNS it is the
	// DCTCP-style step-marking switch queue of the paper's §5 testbed.
	AQMDropTail AQMKind = iota
	// AQMRED is Random Early Detection (deterministic count-based
	// variant): an EWMA of the queue depth drives an early drop/mark
	// probability between a min and max threshold.
	AQMRED
	// AQMCoDel is Controlled Delay: packets carry their enqueue time and
	// are dropped (or CE-marked) at dequeue when sojourn time stays above
	// a target for longer than an interval, with the classic 1/sqrt(count)
	// control law.
	AQMCoDel
)

// aqmNames orders the parseable discipline names.
var aqmNames = []string{"droptail", "red", "codel"}

// AQMNames returns the accepted discipline names, in display order.
func AQMNames() []string { return append([]string(nil), aqmNames...) }

// String implements fmt.Stringer.
func (k AQMKind) String() string {
	if int(k) < len(aqmNames) {
		return aqmNames[k]
	}
	return fmt.Sprintf("AQMKind(%d)", int(k))
}

// ParseAQM resolves a discipline name (case-insensitive). Unknown names
// return an error listing the valid ones, mirroring cc.New.
func ParseAQM(name string) (AQMKind, error) {
	for i, n := range aqmNames {
		if strings.EqualFold(name, n) {
			return AQMKind(i), nil
		}
	}
	return 0, fmt.Errorf("netsim: unknown AQM %q (have %s)", name, strings.Join(aqmNames, ", "))
}

// AQMConfig parameterizes one port's queue discipline. The zero value is
// an unlimited DropTail FIFO with no marking.
type AQMConfig struct {
	Kind AQMKind

	// LimitBytes caps the queue in bytes (all Kinds). 0 = unlimited.
	LimitBytes int64

	// ECN makes RED and CoDel mark ECN-capable packets CE instead of
	// dropping them (drops still happen for non-ECT traffic and on
	// queue-limit overflow).
	ECN bool

	// MarkThresholdNS enables DCTCP step marking on top of any Kind:
	// when the instantaneous queueing delay ahead of an arriving
	// ECN-capable packet exceeds this, it is marked CE (RFC 3168 /
	// DCTCP's K threshold). 0 disables.
	MarkThresholdNS int64

	// RED thresholds on the averaged queue depth, and the drop
	// probability at REDMaxBytes. REDWeightShift is the EWMA weight
	// exponent: avg moves toward the instantaneous depth by 1/2^shift
	// per arrival (RFC 2309 recommends w=1/512, shift 9).
	REDMinBytes    int64
	REDMaxBytes    int64
	REDMaxP        float64
	REDWeightShift uint

	// CoDel control-law parameters (the reference values are 5 ms/100 ms;
	// datacenter fabrics scale both down with the RTT).
	CoDelTargetNS   int64
	CoDelIntervalNS int64
}

// Datacenter-scale defaults, sized for the testbed's 100 Gbps links and
// ~5 µs RTTs: a 256 KB queue is ~20 µs of drain time.
const (
	DefaultQueueLimitBytes = 256 << 10
	DefaultREDMinBytes     = 32 << 10
	DefaultREDMaxBytes     = 128 << 10
	DefaultREDMaxP         = 0.1
	DefaultREDWeightShift  = 6
	DefaultCoDelTargetNS   = 2_000
	DefaultCoDelIntervalNS = 20_000
)

// DropTail returns a FIFO discipline with the given byte limit
// (0 = DefaultQueueLimitBytes).
func DropTail(limitBytes int64) AQMConfig {
	if limitBytes == 0 {
		limitBytes = DefaultQueueLimitBytes
	}
	return AQMConfig{Kind: AQMDropTail, LimitBytes: limitBytes}
}

// RED returns a Random Early Detection discipline with the datacenter
// defaults, marking instead of dropping when ecn is set.
func RED(limitBytes int64, ecn bool) AQMConfig {
	if limitBytes == 0 {
		limitBytes = DefaultQueueLimitBytes
	}
	return AQMConfig{
		Kind: AQMRED, LimitBytes: limitBytes, ECN: ecn,
		REDMinBytes: DefaultREDMinBytes, REDMaxBytes: DefaultREDMaxBytes,
		REDMaxP: DefaultREDMaxP, REDWeightShift: DefaultREDWeightShift,
	}
}

// CoDel returns a Controlled Delay discipline with the datacenter
// defaults, marking instead of dropping when ecn is set.
func CoDel(limitBytes int64, ecn bool) AQMConfig {
	if limitBytes == 0 {
		limitBytes = DefaultQueueLimitBytes
	}
	return AQMConfig{
		Kind: AQMCoDel, LimitBytes: limitBytes, ECN: ecn,
		CoDelTargetNS: DefaultCoDelTargetNS, CoDelIntervalNS: DefaultCoDelIntervalNS,
	}
}

// ECNThreshold returns a DCTCP-style step-marking DropTail queue: mark
// CE above the delay threshold, tail-drop only at the byte limit.
func ECNThreshold(markNS, limitBytes int64) AQMConfig {
	cfg := DropTail(limitBytes)
	cfg.MarkThresholdNS = markNS
	return cfg
}

// ByName maps a parsed AQMKind to its default-configured AQMConfig with
// ECN enabled — the shape the scenario CLIs hand out.
func (k AQMKind) ByName() AQMConfig {
	switch k {
	case AQMRED:
		return RED(0, true)
	case AQMCoDel:
		return CoDel(0, true)
	default:
		return ECNThreshold(DefaultCoDelTargetNS, 0)
	}
}

// verdict is one admission decision.
type verdict int

const (
	admitPass verdict = iota
	admitMark
	admitDrop
)

// aqm is the per-queue discipline state machine. It is pure decision
// logic: the owner (RouterPort or Pipe) owns the actual packet queue and
// counters and calls admitEnqueue for every arrival and admitDequeue for
// every head-of-line departure.
type aqm struct {
	cfg AQMConfig

	// RED state: avgShifted is the EWMA of the queue depth in bytes,
	// stored as avg * 2^weightShift so the update is integer-exact;
	// count is the packets admitted since the last early drop/mark.
	avgShifted int64
	count      int64

	// CoDel state (times in ns).
	firstAbove int64
	dropNext   int64
	dropCount  int64
	dropping   bool
}

func newAQM(cfg AQMConfig) aqm { return aqm{cfg: cfg} }

// admitEnqueue decides the fate of an arriving packet given the current
// queue depth (bytes, excluding the arrival), the arrival's wire length,
// the queueing delay it would experience (ns), and whether it is
// ECN-capable. DropTail limit and RED run here; CoDel admits everything
// within the limit and decides at dequeue.
func (a *aqm) admitEnqueue(qBytes, pktBytes, qDelayNS int64, ect bool) verdict {
	if a.cfg.LimitBytes > 0 && qBytes+pktBytes > a.cfg.LimitBytes {
		return admitDrop
	}
	v := admitPass
	if a.cfg.Kind == AQMRED {
		v = a.redArrival(qBytes)
	}
	// Step marking composes with any discipline: a packet that survived
	// the early-drop stage is still marked when the standing queue is
	// above the DCTCP threshold.
	if v == admitPass && a.cfg.MarkThresholdNS > 0 && ect && qDelayNS > a.cfg.MarkThresholdNS {
		v = admitMark
	}
	if v == admitMark && !ect {
		// RED wanted to mark but the packet cannot carry CE: drop, as a
		// real RED-ECN queue does for not-ECT traffic.
		v = admitDrop
	}
	return v
}

// redArrival runs the RED decision for one arrival. Deterministic
// count-based variant: in the congested band every ceil(1/p_b)-th packet
// is marked (ECN on) or dropped, where p_b grows linearly from 0 at
// REDMinBytes to REDMaxP at REDMaxBytes of averaged queue depth.
func (a *aqm) redArrival(qBytes int64) verdict {
	c := &a.cfg
	// avg += (q - avg) / 2^shift, in fixed point.
	a.avgShifted += qBytes - a.avgShifted>>c.REDWeightShift
	avg := a.avgShifted >> c.REDWeightShift
	switch {
	case avg < c.REDMinBytes:
		a.count = 0
		return admitPass
	case avg >= c.REDMaxBytes:
		a.count = 0
		if c.ECN {
			return admitMark
		}
		return admitDrop
	}
	pb := c.REDMaxP * float64(avg-c.REDMinBytes) / float64(c.REDMaxBytes-c.REDMinBytes)
	a.count++
	if float64(a.count)*pb >= 1 {
		a.count = 0
		if c.ECN {
			return admitMark
		}
		return admitDrop
	}
	return admitPass
}

// admitDequeue decides the fate of the head-of-line packet leaving the
// queue after sojournNS in it, with qBytes left behind it. Only CoDel
// acts here; every other discipline passes.
func (a *aqm) admitDequeue(nowNS, sojournNS, qBytes int64, ect bool) verdict {
	if a.cfg.Kind != AQMCoDel {
		return admitPass
	}
	c := &a.cfg
	okToDrop := false
	if sojournNS < c.CoDelTargetNS || qBytes == 0 {
		// Below target (or the queue is draining dry): leave the
		// dropping state and re-arm the interval timer.
		a.firstAbove = 0
	} else if a.firstAbove == 0 {
		a.firstAbove = nowNS + c.CoDelIntervalNS
	} else if nowNS >= a.firstAbove {
		okToDrop = true
	}

	if a.dropping {
		if !okToDrop {
			a.dropping = false
			return admitPass
		}
		if nowNS >= a.dropNext {
			a.dropCount++
			a.dropNext += intervalOverSqrt(c.CoDelIntervalNS, a.dropCount)
			if c.ECN && ect {
				return admitMark
			}
			return admitDrop
		}
		return admitPass
	}
	if okToDrop {
		a.dropping = true
		// Resume close to the previous drop rate if we left dropping
		// recently, else restart gently (the standard CoDel heuristic).
		if nowNS-a.dropNext < c.CoDelIntervalNS && a.dropCount > 2 {
			a.dropCount -= 2
		} else {
			a.dropCount = 1
		}
		a.dropNext = nowNS + intervalOverSqrt(c.CoDelIntervalNS, a.dropCount)
		if c.ECN && ect {
			return admitMark
		}
		return admitDrop
	}
	return admitPass
}

// intervalOverSqrt computes interval/sqrt(count) — CoDel's control law.
// float64 sqrt is fully specified by IEEE 754, so the result is
// deterministic across platforms.
func intervalOverSqrt(intervalNS, count int64) int64 {
	if count < 1 {
		count = 1
	}
	return int64(float64(intervalNS) / math.Sqrt(float64(count)))
}

// ecnCapable reports whether the packet negotiated ECN (carries an ECT
// codepoint): only such packets may be CE-marked; everything else must
// be dropped to signal congestion.
func ecnCapable(pkt *wire.Packet) bool {
	return pkt.Kind == wire.KindTCP &&
		(pkt.IP.ECN == wire.ECNECT0 || pkt.IP.ECN == wire.ECNECT1)
}

// markCE returns a CE-marked copy of the packet. The copy matters: the
// sender's pipe may still deliver a duplicate of the original, which
// must keep its ECT codepoint — and pooled packets own their payload
// storage, so the fork must deep-copy (Clone), not alias.
func markCE(pkt *wire.Packet) *wire.Packet {
	marked := pkt.Clone()
	marked.IP.ECN = wire.ECNCE
	return marked
}
