package netsim

import (
	"testing"

	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// testStar builds a 3-node single-router star on a serial kernel with
// per-node capture sinks and returns everything a test needs to drive
// raw packets through it.
func testStar(t *testing.T, cfg AQMConfig) (*sim.Kernel, *Topology, []wire.Addr, [][]*wire.Packet) {
	t.Helper()
	k := sim.New()
	addrs := []wire.Addr{
		wire.MakeAddr(10, 9, 0, 1),
		wire.MakeAddr(10, 9, 0, 2),
		wire.MakeAddr(10, 9, 0, 3),
	}
	specs := make([]NodeSpec, len(addrs))
	for i, a := range addrs {
		specs[i] = NodeSpec{Addr: a, Island: 0, Gbps: 100, PropNS: 600}
	}
	topo := NewStarOn(k, 0, specs, cfg, 9)
	got := make([][]*wire.Packet, len(addrs))
	for i := range addrs {
		i := i
		topo.SetNodeSink(i, func(p *wire.Packet) { got[i] = append(got[i], p) })
	}
	return k, topo, addrs, got
}

func routedPkt(src, dst wire.Addr, seq uint32, payload int) *wire.Packet {
	p := &wire.Packet{Kind: wire.KindTCP, PayloadLen: payload}
	p.IP.Src, p.IP.Dst = src, dst
	p.TCP.Seq = seqnum.Value(seq)
	return p
}

func TestRouterForwardsByDestinationInOrder(t *testing.T) {
	k, topo, addrs, got := testStar(t, DropTail(0))
	for i := 0; i < 5; i++ {
		topo.NodeTX(0)(routedPkt(addrs[0], addrs[1], uint32(i), 1460))
	}
	topo.NodeTX(2)(routedPkt(addrs[2], addrs[0], 99, 100))
	k.Run(10_000)

	if len(got[1]) != 5 {
		t.Fatalf("node 1 received %d packets, want 5", len(got[1]))
	}
	for i, p := range got[1] {
		if p.TCP.Seq != seqnum.Value(i) {
			t.Fatalf("FIFO violated: slot %d has seq %d", i, p.TCP.Seq)
		}
	}
	if len(got[0]) != 1 || got[0][0].TCP.Seq != 99 {
		t.Fatalf("node 0 received %v", got[0])
	}
	if len(got[2]) != 0 {
		t.Fatalf("node 2 received %d stray packets", len(got[2]))
	}
	r := topo.Routers[0]
	if r.FwdPkts != 6 || r.NoRoutePkts != 0 {
		t.Fatalf("router counters: fwd=%d noroute=%d", r.FwdPkts, r.NoRoutePkts)
	}
	if topo.NodePorts[1].DeqPkts != 5 {
		t.Fatalf("port 1 dequeued %d, want 5", topo.NodePorts[1].DeqPkts)
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	k, topo, addrs, got := testStar(t, DropTail(0))
	topo.NodeTX(0)(routedPkt(addrs[0], wire.MakeAddr(192, 168, 0, 1), 0, 100))
	k.Run(5_000)
	if topo.Routers[0].NoRoutePkts != 1 {
		t.Fatalf("NoRoutePkts = %d, want 1", topo.Routers[0].NoRoutePkts)
	}
	for i := range got {
		if len(got[i]) != 0 {
			t.Fatalf("node %d received an unroutable packet", i)
		}
	}
}

func TestRouterPortTailDropAndPeak(t *testing.T) {
	// Two senders converge on node 1's downlink: 200 Gbps in, 100 Gbps
	// out. A limit of 5 KB holds ~3 full-size frames, so the standing
	// queue must tail-drop most of the burst and record the peak.
	k, topo, addrs, got := testStar(t, DropTail(5_000))
	for i := 0; i < 20; i++ {
		topo.NodeTX(0)(routedPkt(addrs[0], addrs[1], uint32(i), 1460))
		topo.NodeTX(2)(routedPkt(addrs[2], addrs[1], uint32(100+i), 1460))
	}
	k.Run(50_000)
	port := topo.NodePorts[1]
	if port.TailDrops == 0 {
		t.Fatal("no tail drops despite 2x oversubscription")
	}
	if want := 40 - int(port.TailDrops); len(got[1]) != want {
		t.Fatalf("delivered %d, want %d (drops %d)", len(got[1]), want, port.TailDrops)
	}
	if port.PeakQBytes == 0 || port.PeakQBytes > 5_000 {
		t.Fatalf("peak queue %d outside (0, limit]", port.PeakQBytes)
	}
	if port.FirstCongCycle < 0 {
		t.Fatal("congestion onset not recorded")
	}
	// Survivors from each sender still arrive in their send order.
	last := map[wire.Addr]seqnum.Value{}
	for i, p := range got[1] {
		if prev, ok := last[p.IP.Src]; ok && p.TCP.Seq <= prev {
			t.Fatalf("reordered survivors at %d: seq %d after %d", i, p.TCP.Seq, prev)
		}
		last[p.IP.Src] = p.TCP.Seq
	}
}

func TestRouterPortSerializes(t *testing.T) {
	// Two 1460 B packets into a 100 Gbps port: the second's delivery
	// trails the first by its full serialization time, never less.
	k, topo, addrs, _ := testStar(t, DropTail(0))
	var at []int64
	topo.SetNodeSink(1, func(p *wire.Packet) { at = append(at, k.Now()) })
	pkt := routedPkt(addrs[0], addrs[1], 0, 1460)
	wireCycles := sim.GbpsRate(100).CyclesFor(int64(pkt.WireLen()))
	topo.NodeTX(0)(pkt)
	topo.NodeTX(0)(routedPkt(addrs[0], addrs[1], 1, 1460))
	k.Run(10_000)
	if len(at) != 2 {
		t.Fatalf("delivered %d, want 2", len(at))
	}
	if gap := at[1] - at[0]; gap < wireCycles {
		t.Fatalf("delivery gap %d cycles < serialization %d", gap, wireCycles)
	}
}

func TestChainRoutesAcrossHops(t *testing.T) {
	// Dumbbell: node 0 on router 0, node 1 on router 1. A packet from 0
	// to 1 must cross the trunk; counters on both routers move.
	k := sim.New()
	a0, a1 := wire.MakeAddr(10, 9, 1, 1), wire.MakeAddr(10, 9, 1, 2)
	nodes := []NodeSpec{
		{Addr: a0, Island: 0, RouterIdx: 0, Gbps: 100, PropNS: 600},
		{Addr: a1, Island: 0, RouterIdx: 1, Gbps: 100, PropNS: 600},
	}
	topo := NewDumbbellOn(k, [2]int{0, 0}, 100, 1_000, nodes, DropTail(0), 7)
	var got []*wire.Packet
	topo.SetNodeSink(1, func(p *wire.Packet) { got = append(got, p) })
	topo.SetNodeSink(0, func(p *wire.Packet) {})
	topo.NodeTX(0)(routedPkt(a0, a1, 7, 100))
	k.Run(10_000)
	if len(got) != 1 || got[0].TCP.Seq != 7 {
		t.Fatalf("cross-trunk delivery failed: %v", got)
	}
	if topo.Routers[0].FwdPkts != 1 || topo.Routers[1].FwdPkts != 1 {
		t.Fatalf("router hops: fwd0=%d fwd1=%d", topo.Routers[0].FwdPkts, topo.Routers[1].FwdPkts)
	}
}

func TestTopologyShardedBitIdentical(t *testing.T) {
	// The same raw-packet scenario on a serial kernel and across 2 and 3
	// shards (nodes and router on distinct islands) must produce
	// identical delivery cycles and counters.
	type run struct {
		at  [][]int64
		fwd int64
		deq []int64
	}
	drive := func(f sim.Fabric) run {
		addrs := []wire.Addr{
			wire.MakeAddr(10, 9, 2, 1),
			wire.MakeAddr(10, 9, 2, 2),
			wire.MakeAddr(10, 9, 2, 3),
		}
		specs := make([]NodeSpec, len(addrs))
		for i, a := range addrs {
			specs[i] = NodeSpec{Addr: a, Island: i, Gbps: 100, PropNS: 600}
		}
		topo := NewStarOn(f, len(addrs), specs, RED(8_000, false), 21)
		r := run{at: make([][]int64, len(addrs))}
		for i := range addrs {
			i := i
			kI := f.IslandKernel(i)
			topo.SetNodeSink(i, func(p *wire.Packet) { r.at[i] = append(r.at[i], kI.Now()) })
		}
		// Burst from nodes 0 and 2 into node 1, then a trickle.
		for i := 0; i < 12; i++ {
			topo.NodeTX(0)(routedPkt(addrs[0], addrs[1], uint32(i), 1460))
			topo.NodeTX(2)(routedPkt(addrs[2], addrs[1], uint32(100+i), 1000))
		}
		f.Run(4_000)
		topo.NodeTX(1)(routedPkt(addrs[1], addrs[0], 7, 64))
		f.Run(46_000)
		r.fwd = topo.Routers[0].FwdPkts
		for _, p := range topo.NodePorts {
			r.deq = append(r.deq, p.DeqPkts)
		}
		return r
	}
	serial := drive(sim.New())
	for _, shards := range []int{2, 3} {
		got := drive(sim.NewSharded(shards))
		if len(got.at[1]) != len(serial.at[1]) || got.fwd != serial.fwd {
			t.Fatalf("%d shards: deliveries %d fwd %d, serial %d/%d",
				shards, len(got.at[1]), got.fwd, len(serial.at[1]), serial.fwd)
		}
		for i := range serial.at {
			for j := range serial.at[i] {
				if got.at[i][j] != serial.at[i][j] {
					t.Fatalf("%d shards: node %d delivery %d at cycle %d, serial %d",
						shards, i, j, got.at[i][j], serial.at[i][j])
				}
			}
		}
		for i := range serial.deq {
			if got.deq[i] != serial.deq[i] {
				t.Fatalf("%d shards: port %d deq %d, serial %d", shards, i, got.deq[i], serial.deq[i])
			}
		}
	}
}
