package netsim

import (
	"fmt"

	"f4t/internal/sim"
	"f4t/internal/telemetry"
	"f4t/internal/wire"
)

// NodeSpec describes one endpoint of a topology: its address, which
// island its components run on, which router it hangs off, and its
// access-link characteristics. Per-node PropNS is what gives a WAN
// chain its RTT diversity.
type NodeSpec struct {
	Addr      wire.Addr
	MAC       wire.MAC
	Island    int
	RouterIdx int   // which router in the chain the node attaches to
	Gbps      int64 // access link bandwidth (both directions)
	PropNS    int64 // access link propagation delay (each direction)
}

// Topology is a built multi-node network: a chain of routers joined by
// trunk ports, with each node reaching its router through an uplink
// Pipe and receiving through a downlink RouterPort. Indexing follows
// the NodeSpec slice the builder was given.
//
// Construction order — routers, trunk ports (left to right), then per
// node the downlink port and uplink pipe — is fixed, so every fabric
// sees identical registration slots and RNG seeds and a sharded run
// stays bit-identical to a serial one (see sim.Fabric).
type Topology struct {
	Routers   []*Router
	NodePorts []*RouterPort // router→node downlink, per node
	Uplinks   []*Pipe       // node→router uplink, per node

	// Trunk ports, indexed by trunk segment i (between routers i and
	// i+1): TrunkRight[i] sits on router i facing i+1, TrunkLeft[i] on
	// router i+1 facing i. On a dumbbell, TrunkLeft[0] is the shared
	// bottleneck every right-side sender contends on toward router 0 —
	// the port fairness experiments read their queue evidence from.
	TrunkRight []*RouterPort
	TrunkLeft  []*RouterPort

	nodes []NodeSpec
}

// NewStarOn builds a single-router star (the incast/fan-in shape): all
// nodes share one switch, every flow crosses two queues (sender uplink,
// receiver downlink port). routerIsland is the switch's shard.
func NewStarOn(f sim.Fabric, routerIsland int, nodes []NodeSpec, cfg AQMConfig, seed uint64) *Topology {
	ns := append([]NodeSpec(nil), nodes...)
	for i := range ns {
		ns[i].RouterIdx = 0
	}
	return NewChainOn(f, []int{routerIsland}, 0, 0, ns, cfg, seed)
}

// NewDumbbellOn builds the classic two-router dumbbell: nodes attach to
// either router (NodeSpec.RouterIdx 0 or 1) and the shared trunk is the
// bottleneck every cross flow contends on.
func NewDumbbellOn(f sim.Fabric, routerIslands [2]int, trunkGbps, trunkPropNS int64, nodes []NodeSpec, cfg AQMConfig, seed uint64) *Topology {
	return NewChainOn(f, routerIslands[:], trunkGbps, trunkPropNS, nodes, cfg, seed)
}

// NewChainOn builds a linear chain of routers (a multi-hop WAN path for
// len > 2) joined by duplex trunks, and attaches every node to its
// RouterIdx router. The AQMConfig applies to every output port — trunk
// and downlink alike — each with private discipline state. A one-router
// chain takes no trunk parameters.
func NewChainOn(f sim.Fabric, routerIslands []int, trunkGbps, trunkPropNS int64, nodes []NodeSpec, cfg AQMConfig, seed uint64) *Topology {
	nr := len(routerIslands)
	if nr < 1 {
		panic("netsim: topology needs at least one router")
	}
	t := &Topology{nodes: append([]NodeSpec(nil), nodes...)}
	for i := 0; i < nr; i++ {
		t.Routers = append(t.Routers, NewRouter(fmt.Sprintf("sw%d", i)))
	}

	// Trunks: right[i] sits on router i facing i+1, left[i] on router
	// i+1 facing i. Trunk ports are routed, not sinks-of-record: their
	// sink is the peer router's Forward, which is cross-shard safe.
	right := make([]*RouterPort, nr)
	left := make([]*RouterPort, nr) // left[i] lives on router i+1
	for i := 0; i < nr-1; i++ {
		if trunkGbps <= 0 {
			panic("netsim: multi-router chain needs a trunk bandwidth")
		}
		minLat := MinLatencyCycles(trunkPropNS)
		r := newRouterPort(f.IslandKernel(routerIslands[i]),
			f.CrossPost(routerIslands[i], routerIslands[i+1], minLat),
			fmt.Sprintf("trunk%d_%d", i, i+1), trunkGbps, trunkPropNS, cfg)
		r.SetSink(t.Routers[i+1].Forward)
		t.Routers[i].ports = append(t.Routers[i].ports, r)
		f.RegisterOn(routerIslands[i], r)
		right[i] = r

		l := newRouterPort(f.IslandKernel(routerIslands[i+1]),
			f.CrossPost(routerIslands[i+1], routerIslands[i], minLat),
			fmt.Sprintf("trunk%d_%d", i+1, i), trunkGbps, trunkPropNS, cfg)
		l.SetSink(t.Routers[i].Forward)
		t.Routers[i+1].ports = append(t.Routers[i+1].ports, l)
		f.RegisterOn(routerIslands[i+1], l)
		left[i] = l
	}
	t.TrunkRight = append(t.TrunkRight, right[:nr-1]...)
	t.TrunkLeft = append(t.TrunkLeft, left[:nr-1]...)

	// Node attachments: a downlink RouterPort (router island → node
	// island) and an uplink Pipe (node island → router island), seeded
	// per node so fault/mark draws never alias between links.
	for j := range t.nodes {
		n := &t.nodes[j]
		if n.RouterIdx < 0 || n.RouterIdx >= nr {
			panic(fmt.Sprintf("netsim: node %d attaches to router %d of %d", j, n.RouterIdx, nr))
		}
		rIsl := routerIslands[n.RouterIdx]
		minLat := MinLatencyCycles(n.PropNS)

		down := newRouterPort(f.IslandKernel(rIsl),
			f.CrossPost(rIsl, n.Island, minLat),
			fmt.Sprintf("node%d", j), n.Gbps, n.PropNS, cfg)
		t.Routers[n.RouterIdx].ports = append(t.Routers[n.RouterIdx].ports, down)
		f.RegisterOn(rIsl, down)
		t.NodePorts = append(t.NodePorts, down)

		up := NewPipe(f.IslandKernel(n.Island), n.Gbps, n.PropNS, seed*1000+uint64(j)*2+1, nil)
		up.post = f.CrossPost(n.Island, rIsl, minLat)
		up.SetSink(t.Routers[n.RouterIdx].Forward)
		t.Uplinks = append(t.Uplinks, up)
	}

	// Routes: on each router, a node's address exits through its
	// downlink when local, else through the trunk toward its router.
	for j := range t.nodes {
		n := &t.nodes[j]
		for r := 0; r < nr; r++ {
			switch {
			case r == n.RouterIdx:
				t.Routers[r].Route(n.Addr, t.NodePorts[j])
			case r < n.RouterIdx:
				t.Routers[r].Route(n.Addr, right[r])
			default:
				t.Routers[r].Route(n.Addr, left[r-1])
			}
		}
	}
	return t
}

// Nodes returns the topology's node count.
func (t *Topology) Nodes() int { return len(t.nodes) }

// Node returns the j-th node's spec.
func (t *Topology) Node(j int) NodeSpec { return t.nodes[j] }

// NodeTX returns the j-th node's transmit function (what its engine or
// stack sends into).
func (t *Topology) NodeTX(j int) func(*wire.Packet) { return t.Uplinks[j].Send }

// SetNodeSink attaches the j-th node's receive callback to its downlink
// port.
func (t *Topology) SetNodeSink(j int, deliver func(*wire.Packet)) {
	t.NodePorts[j].SetSink(deliver)
}

// Instrument registers every router (and its ports) plus every uplink
// under prefix. Safe on a nil registry.
func (t *Topology) Instrument(reg *telemetry.Registry, prefix string) {
	for _, r := range t.Routers {
		r.Instrument(reg, prefix+"."+r.Name)
	}
	for j, up := range t.Uplinks {
		up.Instrument(reg, fmt.Sprintf("%s.up%d", prefix, j))
	}
}
