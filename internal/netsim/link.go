// Package netsim models the physical network of the evaluation testbed:
// point-to-point 100 Gbps Ethernet links with byte-accurate serialization
// (including the 78 B per-packet overhead), propagation delay, and
// deterministic fault injection (loss, duplication, reordering) for the
// congestion-control and robustness experiments.
//
// Pipes are not tickers: every delivery is scheduled on a kernel timer
// at Send time, so in-flight packets bound the kernel's cycle skipping
// automatically and the package needs no NextWork hints.
package netsim

import (
	"f4t/internal/sim"
	"f4t/internal/telemetry"
	"f4t/internal/wire"
)

// TapNote annotates a tapped frame with what the network element did
// to it (bits may combine, e.g. TapSent|TapMarkCE).
type TapNote uint16

// Tap annotation bits.
const (
	TapSent      TapNote = 1 << iota // frame went onto the wire
	TapDropFault                     // dropped by fault injection (loss/DropEvery/DropOnce)
	TapDropTail                      // dropped by a queue byte/packet limit
	TapDropAQM                       // dropped early by the AQM law (RED band, CoDel)
	TapMarkCE                        // ECN CE mark applied
	TapReorder                       // delivery delayed by the reorder fault
	TapDup                           // duplicate delivery of the previous frame
)

// Tap observes frames at a network element's decision points: sends
// (after marking), drops, and duplicates. It runs synchronously inside
// the element's own execution context, before any packet recycling, so
// implementations may Marshal the frame but must not retain it. nowNS
// is the element's kernel clock.
type Tap func(nowNS int64, pkt *wire.Packet, note TapNote)

// Faults configures deterministic fault injection on one pipe direction.
// Zero value = perfect link.
type Faults struct {
	LossProb    float64 // i.i.d. packet drop probability
	DupProb     float64 // i.i.d. duplication probability
	ReorderProb float64 // probability of delaying a packet by ReorderNS
	ReorderNS   int64   // extra delay applied to reordered packets
	DropEvery   int64   // drop exactly every Nth packet (0 = off); useful
	// for the Fig 14 "occasional packet drops" runs where determinism
	// matters more than randomness
	DropOnce int64 // drop exactly the Nth packet then disarm (0 = off)
}

// Pipe is one direction of a link.
type Pipe struct {
	k             *sim.Kernel
	post          sim.Poster // delivery scheduler: the kernel, or a cross-shard mailbox
	deliverFn     func(any)  // pre-bound delivery callback (one closure per pipe, not per packet)
	rate          *sim.ByteRate
	prop          int64 // propagation delay in cycles
	deliver       func(*wire.Packet)
	faults        Faults
	rng           *sim.Rand
	markThreshold int64 // backlog cycles above which ECT packets are CE-marked (SetAQM)
	tap           Tap   // frame observer (pcap capture); nil when off

	// Stats.
	SentPkts    int64
	SentBytes   int64 // wire bytes including all overheads
	DroppedPkts int64
	DupPkts     int64
	ReorderPkts int64
	MarkedPkts  int64 // CE marks applied (ECN)

	// Telemetry (nil when disabled; see telemetry.go).
	trc *telemetry.Trace
	tid int32
}

// NewPipe builds a unidirectional pipe of the given bandwidth and
// propagation delay, delivering packets to the given sink.
func NewPipe(k *sim.Kernel, gbps int64, propNS int64, seed uint64, deliver func(*wire.Packet)) *Pipe {
	p := &Pipe{
		k:       k,
		rate:    sim.GbpsRate(gbps),
		prop:    sim.NSToCycles(propNS),
		deliver: deliver,
		rng:     sim.NewRand(seed),
	}
	p.post = k
	p.deliverFn = func(arg any) { p.deliver(arg.(*wire.Packet)) }
	return p
}

// MinLatencyCycles returns the smallest possible cycle delta between a
// Send and its delivery on a link with the given propagation delay: the
// propagation time plus at least one serialization cycle. This is the
// conservative lookahead a sharded fabric derives its synchronization
// window from.
func MinLatencyCycles(propNS int64) int64 { return sim.NSToCycles(propNS) + 1 }

// SetFaults installs a fault-injection profile.
func (p *Pipe) SetFaults(f Faults) { p.faults = f }

// SetTap installs a frame observer (nil to remove).
func (p *Pipe) SetTap(t Tap) { p.tap = t }

// SetAQM installs a queue discipline on the pipe. A pipe's queue is its
// implicit serialization backlog, so only the DCTCP step-marking subset
// applies (AQMDropTail + MarkThresholdNS): ECN-capable packets are
// CE-marked while the backlog delay exceeds the threshold — the switch
// behaviour DCTCP depends on. Disciplines that need an explicit packet
// queue (RED, CoDel) live on a RouterPort; asking a pipe for them is a
// rig construction bug and panics.
func (p *Pipe) SetAQM(cfg AQMConfig) {
	if cfg.Kind != AQMDropTail {
		panic("netsim: Pipe supports only threshold ECN marking; use a RouterPort for " + cfg.Kind.String())
	}
	p.markThreshold = sim.NSToCycles(cfg.MarkThresholdNS)
}

// SetSink replaces the delivery callback (used when endpoints attach
// after link construction).
func (p *Pipe) SetSink(deliver func(*wire.Packet)) { p.deliver = deliver }

// Backlog returns the cycles of queued serialization work.
func (p *Pipe) Backlog() int64 { return p.rate.Backlog(p.k.Now()) }

// Send serializes the packet onto the wire. Delivery happens after
// serialization plus propagation; transfers queue behind earlier ones
// (the link is the shared serial resource the goodput arithmetic of §5.1
// is about).
func (p *Pipe) Send(pkt *wire.Packet) {
	p.SentPkts++
	wireLen := int64(pkt.WireLen())
	p.SentBytes += wireLen
	done := p.rate.Reserve(p.k.Now(), wireLen)

	f := &p.faults
	if f.DropOnce > 0 {
		f.DropOnce--
		if f.DropOnce == 0 {
			p.DroppedPkts++
			if p.trc != nil {
				p.traceFault("pkt.drop")
			}
			if p.tap != nil {
				p.tap(p.k.NowNS(), pkt, TapDropFault)
			}
			return
		}
	}
	if f.DropEvery > 0 && p.SentPkts%f.DropEvery == 0 {
		p.DroppedPkts++
		if p.trc != nil {
			p.traceFault("pkt.drop")
		}
		if p.tap != nil {
			p.tap(p.k.NowNS(), pkt, TapDropFault)
		}
		return
	}
	if f.LossProb > 0 && p.rng.Bool(f.LossProb) {
		p.DroppedPkts++
		if p.trc != nil {
			p.traceFault("pkt.drop")
		}
		if p.tap != nil {
			p.tap(p.k.NowNS(), pkt, TapDropFault)
		}
		return
	}

	note := TapSent

	// ECN marking (shared AQM path, see aqm.go): an over-threshold
	// standing queue marks ECN-capable traffic instead of growing
	// unbounded.
	if p.markThreshold > 0 && ecnCapable(pkt) &&
		p.rate.Backlog(p.k.Now()) > p.markThreshold {
		pkt = markCE(pkt)
		p.MarkedPkts++
		if p.trc != nil {
			p.traceFault("pkt.mark")
		}
		note |= TapMarkCE
	}

	at := done + p.prop
	if f.ReorderProb > 0 && p.rng.Bool(f.ReorderProb) {
		at += sim.NSToCycles(f.ReorderNS)
		p.ReorderPkts++
		if p.trc != nil {
			p.traceFault("pkt.reorder")
		}
		note |= TapReorder
	}
	if p.trc != nil {
		p.traceSend(p.k.Now(), at, wireLen)
	}
	if p.tap != nil {
		p.tap(p.k.NowNS(), pkt, note)
	}
	p.post.AtCall(at, p.deliverFn, pkt)

	if f.DupProb > 0 && p.rng.Bool(f.DupProb) {
		p.DupPkts++
		if p.trc != nil {
			p.traceFault("pkt.dup")
		}
		dup := pkt.Clone()
		if p.tap != nil {
			p.tap(p.k.NowNS(), dup, TapSent|TapDup)
		}
		p.post.AtCall(at+1, p.deliverFn, dup)
	}
}

// Utilization returns the fraction of cycles the pipe has been busy.
func (p *Pipe) Utilization() float64 {
	now := p.k.Now()
	if now == 0 {
		return 0
	}
	return float64(p.rate.BusyCycles()) / float64(now)
}

// Link is a full-duplex point-to-point link between endpoints A and B.
type Link struct {
	AtoB *Pipe
	BtoA *Pipe
}

// NewLink builds a duplex link; sinks attach afterwards via SetSink.
func NewLink(k *sim.Kernel, gbps int64, propNS int64, seed uint64) *Link {
	return &Link{
		AtoB: NewPipe(k, gbps, propNS, seed*2+1, nil),
		BtoA: NewPipe(k, gbps, propNS, seed*2+2, nil),
	}
}

// NewLinkOn builds a duplex link between two islands of a Fabric. Each
// pipe's clock (serialization, backlog, fault draws) is its sending
// island's kernel, and deliveries are scheduled through the fabric —
// a plain timer when both islands share a kernel, a deterministic
// cross-shard mailbox otherwise. The link declares its minimum
// sender-to-receiver latency to the fabric, which bounds the sharded
// scheduler's synchronization window.
func NewLinkOn(f sim.Fabric, islandA, islandB int, gbps int64, propNS int64, seed uint64) *Link {
	minLat := MinLatencyCycles(propNS)
	ab := NewPipe(f.IslandKernel(islandA), gbps, propNS, seed*2+1, nil)
	ab.post = f.CrossPost(islandA, islandB, minLat)
	ba := NewPipe(f.IslandKernel(islandB), gbps, propNS, seed*2+2, nil)
	ba.post = f.CrossPost(islandB, islandA, minLat)
	return &Link{AtoB: ab, BtoA: ba}
}
