package netsim

import (
	"testing"

	"f4t/internal/sim"
	"f4t/internal/wire"
)

func tcpPkt(payload int) *wire.Packet {
	return &wire.Packet{Kind: wire.KindTCP, PayloadLen: payload}
}

func TestSerializationTiming(t *testing.T) {
	k := sim.New()
	var arrivals []int64
	p := NewPipe(k, 100, 0, 1, func(*wire.Packet) { arrivals = append(arrivals, k.Now()) })
	// A 1460 B payload = 1538 wire bytes at 50 B/cycle ≈ 31 cycles.
	p.Send(tcpPkt(1460))
	p.Send(tcpPkt(1460)) // queues behind the first
	k.Run(100)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] < 30 || arrivals[0] > 33 {
		t.Fatalf("first arrival at %d, want ~31", arrivals[0])
	}
	if gap := arrivals[1] - arrivals[0]; gap < 29 || gap > 33 {
		t.Fatalf("serialization gap = %d, want ~31", gap)
	}
}

func TestPropagationDelay(t *testing.T) {
	k := sim.New()
	var at int64 = -1
	p := NewPipe(k, 100, 1000, 1, func(*wire.Packet) { at = k.Now() }) // 1 us = 250 cycles
	p.Send(tcpPkt(0))
	k.Run(400)
	if at < 250 {
		t.Fatalf("arrival at %d, want ≥ 250 (propagation)", at)
	}
}

func TestLinkUtilizationAtSaturation(t *testing.T) {
	k := sim.New()
	delivered := 0
	p := NewPipe(k, 100, 0, 1, func(*wire.Packet) { delivered++ })
	k.Register(sim.TickerFunc(func(int64) {
		if p.Backlog() < 100 {
			p.Send(tcpPkt(1460))
		}
	}))
	k.Run(10_000)
	if u := p.Utilization(); u < 0.95 {
		t.Fatalf("saturated link utilization = %.2f", u)
	}
	// 100 Gbps over 40 us = 500 KB ≈ 325 full frames.
	if delivered < 300 || delivered > 340 {
		t.Fatalf("delivered %d frames, want ~325", delivered)
	}
}

func TestDropOnce(t *testing.T) {
	k := sim.New()
	var got []int
	p := NewPipe(k, 100, 0, 1, func(pkt *wire.Packet) { got = append(got, pkt.PayloadLen) })
	p.SetFaults(Faults{DropOnce: 3})
	for i := 1; i <= 5; i++ {
		p.Send(tcpPkt(i))
	}
	k.Run(100)
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4", len(got))
	}
	for _, n := range got {
		if n == 3 {
			t.Fatal("the 3rd packet was delivered despite DropOnce")
		}
	}
	if p.DroppedPkts != 1 {
		t.Fatalf("dropped = %d", p.DroppedPkts)
	}
}

func TestDropEvery(t *testing.T) {
	k := sim.New()
	n := 0
	p := NewPipe(k, 100, 0, 1, func(*wire.Packet) { n++ })
	p.SetFaults(Faults{DropEvery: 10})
	for i := 0; i < 100; i++ {
		p.Send(tcpPkt(64))
	}
	k.Run(1000)
	if p.DroppedPkts != 10 || n != 90 {
		t.Fatalf("dropped=%d delivered=%d", p.DroppedPkts, n)
	}
}

func TestLossProbabilityRoughlyHolds(t *testing.T) {
	k := sim.New()
	n := 0
	p := NewPipe(k, 100, 0, 42, func(*wire.Packet) { n++ })
	p.SetFaults(Faults{LossProb: 0.1})
	const total = 5000
	for i := 0; i < total; i++ {
		p.Send(tcpPkt(0))
	}
	k.Run(200_000)
	lossRate := float64(p.DroppedPkts) / total
	if lossRate < 0.07 || lossRate > 0.13 {
		t.Fatalf("loss rate = %.3f, want ~0.10", lossRate)
	}
}

func TestDuplication(t *testing.T) {
	k := sim.New()
	n := 0
	p := NewPipe(k, 100, 0, 7, func(*wire.Packet) { n++ })
	p.SetFaults(Faults{DupProb: 1.0})
	for i := 0; i < 10; i++ {
		p.Send(tcpPkt(0))
	}
	k.Run(1000)
	if n != 20 {
		t.Fatalf("delivered %d with certain duplication, want 20", n)
	}
}

func TestReorderDelays(t *testing.T) {
	k := sim.New()
	var order []int
	p := NewPipe(k, 100, 0, 3, func(pkt *wire.Packet) { order = append(order, pkt.PayloadLen) })
	p.SetFaults(Faults{ReorderProb: 1.0, ReorderNS: 10_000})
	p.Send(tcpPkt(1))
	p.SetFaults(Faults{}) // second packet travels normally
	p.Send(tcpPkt(2))
	k.Run(5000)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", order)
	}
	// ReorderPkts counted on the delayed one.
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int64 {
		k := sim.New()
		var at []int64
		p := NewPipe(k, 100, 100, 99, func(*wire.Packet) { at = append(at, k.Now()) })
		p.SetFaults(Faults{LossProb: 0.3, DupProb: 0.2, ReorderProb: 0.2, ReorderNS: 500})
		for i := 0; i < 200; i++ {
			p.Send(tcpPkt(i % 700))
		}
		k.Run(50_000)
		return at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
