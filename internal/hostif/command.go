// Package hostif models the software↔hardware interface of §4.1.1 and
// §4.6: per-thread command queues in hugepage DMA buffers (depth 1024,
// 16 B entries), MMIO doorbells with batching, completion queues with a
// software doorbell polled by the library, and a PCIe bandwidth/latency
// model through which every command, completion and payload byte must
// pass.
package hostif

import (
	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// Op is a host-to-device command opcode.
type Op uint8

// Command opcodes (the socket API calls that map to 16 B commands).
const (
	OpConnect Op = iota
	OpListen
	OpSend // carries the absolute REQ pointer, not a length (§4.2.1)
	OpRecv // carries the application-consumed pointer
	OpClose
	OpAbort
)

// Command is one host→device queue entry. On the wire it is CommandBytes
// wide; the struct carries the decoded form.
type Command struct {
	Op   Op
	Flow flow.ID
	Ptr  seqnum.Value // send/recv pointer for OpSend/OpRecv

	// Connection setup fields (OpConnect/OpListen).
	RemoteAddr wire.Addr
	RemotePort uint16
	LocalPort  uint16
}

// CompKind is a device-to-host completion kind.
type CompKind uint8

// Completion kinds (ACKed-data and received-data pointers, §4.1.1, plus
// connection lifecycle).
const (
	CompEstablished CompKind = iota
	CompAcked                // send bytes up to Seq released
	CompDelivered            // in-order received data up to Seq available
	CompPeerClosed
	CompClosed
	CompReset
	CompAccepted // new passive connection (flow ID + local port)
)

// Completion is one device→host queue entry (16 B on the wire).
type Completion struct {
	Kind CompKind
	Flow flow.ID
	Seq  seqnum.Value
	Seq2 seqnum.Value // CompEstablished: the receive-stream anchor (IRS+1)
	Port uint16       // local port, correlates dials and listener dispatch
}

// Default queue geometry from the paper.
const (
	QueueDepth       = 1024
	CommandBytes16   = 16
	CommandBytes8    = 8 // the §6 optimization that lifts the PCIe ceiling
	CompletionBytes  = 16
)
