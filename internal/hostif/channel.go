package hostif

import (
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// fetchBatch is how many commands FtEngine reads from a queue per DMA
// fetch ("FtEngine reads multiple commands from each command queue at
// once", §5.1).
const fetchBatch = 16

// Channel is one per-thread command/completion queue pair living in
// hugepage DMA memory (§4.1.1). The host posts commands and polls
// completions; the device fetches commands over PCIe and DMAs
// completions back, writing the software doorbell.
type Channel struct {
	k        *sim.Kernel
	pcie     *PCIe
	cmdBytes int64

	host     *sim.Queue[Command] // posted by host, not yet fetched
	device   *sim.Queue[Command] // fetched, visible to the engine
	fetching int                 // DMA reads in flight (pipelined)

	comps *sim.Queue[Completion] // arrived completions, host-visible

	onPost func() // doorbell hook: fires on every host Post

	// Pooled DMA batches and their prebound landing callbacks: each
	// in-flight transfer carries a recycled batch struct through AtCall
	// instead of a fresh slice plus closure, keeping the saturated
	// command/completion path allocation-free. Free lists are per-channel
	// (channels are single-shard objects), so recycling is deterministic.
	cmdDoneFn  func(any)
	compDoneFn func(any)
	cmdFree    []*cmdBatch
	compFree   []*compBatch

	// Stats.
	Posted    int64
	Fetched   int64
	Completed int64

	// Telemetry (nil when disabled; see telemetry.go).
	trc *telemetry.Trace
	tid int32
}

// cmdBatch is one in-flight command DMA read (at most fetchBatch
// commands per fetch).
type cmdBatch struct {
	cmds [fetchBatch]Command
	n    int
}

// compBatch is one in-flight completion DMA write.
type compBatch struct {
	comps []Completion
}

// NewChannel builds a queue pair. cmdBytes is 16 (default) or 8 (the §6
// PCIe optimization).
func NewChannel(k *sim.Kernel, pcie *PCIe, cmdBytes int64) *Channel {
	c := &Channel{
		k:        k,
		pcie:     pcie,
		cmdBytes: cmdBytes,
		host:     sim.NewQueue[Command](QueueDepth),
		device:   sim.NewQueue[Command](QueueDepth),
		comps:    sim.NewQueue[Completion](0),
	}
	c.cmdDoneFn = func(arg any) {
		b := arg.(*cmdBatch)
		for i := 0; i < b.n; i++ {
			c.device.Push(b.cmds[i])
		}
		c.Fetched += int64(b.n)
		c.fetching--
		b.n = 0
		c.cmdFree = append(c.cmdFree, b)
	}
	c.compDoneFn = func(arg any) {
		b := arg.(*compBatch)
		for _, cp := range b.comps {
			c.comps.Push(cp)
		}
		c.Completed += int64(len(b.comps))
		b.comps = b.comps[:0]
		c.compFree = append(c.compFree, b)
	}
	return c
}

// SetDoorbell registers a callback invoked on every host Post — the MMIO
// doorbell. The engine uses it to wake the kernel out of a quiescent
// skip when a command arrives.
func (c *Channel) SetDoorbell(fn func()) { c.onPost = fn }

// Post enqueues a command from the host thread. It reports false when the
// queue is full (the library must retry — a blocking-API path, §4.6).
func (c *Channel) Post(cmd Command) bool {
	if !c.host.Push(cmd) {
		return false
	}
	c.Posted++
	if c.onPost != nil {
		c.onPost()
	}
	return true
}

// NextWork reports the earliest cycle the channel can make progress on
// its own: immediately while commands sit in either queue (fetch engine
// or the engine's drain). DMA transfers in flight complete via kernel
// timers, so they need no polling.
func (c *Channel) NextWork(now int64) int64 {
	if c.host.Len() > 0 || c.device.Len() > 0 {
		return now + 1
	}
	return sim.Dormant
}

// HostBacklog returns commands posted but not yet fetched.
func (c *Channel) HostBacklog() int { return c.host.Len() }

// maxFetchesInFlight is the DMA read pipeline depth: the fetch engine
// keeps several batch reads outstanding to hide the PCIe latency.
const maxFetchesInFlight = 4

// TickDevice advances the device-side fetch engine: when commands are
// posted and the read pipeline has room, DMA-read a batch (PCIe
// bandwidth + latency apply).
func (c *Channel) TickDevice() {
	for c.fetching < maxFetchesInFlight && !c.host.Empty() {
		n := c.host.Len()
		if n > fetchBatch {
			n = fetchBatch
		}
		if c.device.Len()+n > QueueDepth {
			n = QueueDepth - c.device.Len()
			if n <= 0 {
				return // device queue full: backpressure to the host queue
			}
		}
		var b *cmdBatch
		if ln := len(c.cmdFree); ln > 0 {
			b = c.cmdFree[ln-1]
			c.cmdFree = c.cmdFree[:ln-1]
		} else {
			b = new(cmdBatch)
		}
		for i := 0; i < n; i++ {
			b.cmds[i], _ = c.host.Pop()
		}
		b.n = n
		c.fetching++
		done := c.pcie.TransferToDevice(int64(n) * c.cmdBytes)
		if c.trc != nil {
			c.traceDMA("cmd.fetch", c.k.Now(), done, n)
		}
		c.k.AtCall(done, c.cmdDoneFn, b)
	}
}

// PopCommand returns the next fetched command to the engine.
func (c *Channel) PopCommand() (Command, bool) { return c.device.Pop() }

// PeekCommand lets the engine inspect the next command without consuming
// it (backpressure: a command is only popped when the scheduler can take
// its event).
func (c *Channel) PeekCommand() (Command, bool) { return c.device.Peek() }

// DeviceBacklog returns fetched commands not yet consumed by the engine.
func (c *Channel) DeviceBacklog() int { return c.device.Len() }

// PushCompletions DMA-writes a batch of completions to the host queue
// and the software doorbell; they become host-visible after the PCIe
// transfer completes.
func (c *Channel) PushCompletions(comps []Completion) {
	if len(comps) == 0 {
		return
	}
	var b *compBatch
	if ln := len(c.compFree); ln > 0 {
		b = c.compFree[ln-1]
		c.compFree = c.compFree[:ln-1]
	} else {
		b = new(compBatch)
	}
	b.comps = append(b.comps, comps...)
	done := c.pcie.TransferToHost(int64(len(comps)) * CompletionBytes)
	if c.trc != nil {
		c.traceDMA("comp.dma", c.k.Now(), done, len(comps))
	}
	c.k.AtCall(done, c.compDoneFn, b)
}

// PopCompletion polls the completion queue (the software doorbell path:
// the library polls memory, §4.1.1).
func (c *Channel) PopCompletion() (Completion, bool) { return c.comps.Pop() }

// PendingCompletions returns host-visible completions not yet consumed.
func (c *Channel) PendingCompletions() int { return c.comps.Len() }
