package hostif

import (
	"testing"

	"f4t/internal/sim"
)

func TestChannelCommandFetchTiming(t *testing.T) {
	k := sim.New()
	pcie := NewPCIe(k, DefaultPCIe())
	ch := NewChannel(k, pcie, CommandBytes16)

	for i := 0; i < 10; i++ {
		if !ch.Post(Command{Op: OpSend, Flow: 1, Ptr: 100}) {
			t.Fatal("post failed")
		}
	}
	// Nothing is device-visible before the DMA fetch completes.
	if _, ok := ch.PopCommand(); ok {
		t.Fatal("command visible before fetch")
	}
	ch.TickDevice()
	if _, ok := ch.PopCommand(); ok {
		t.Fatal("command visible before PCIe latency elapsed")
	}
	// PCIe latency ~450 ns = ~113 cycles; run past it.
	for i := 0; i < 200; i++ {
		k.Step()
		ch.TickDevice()
	}
	n := 0
	for {
		if _, ok := ch.PopCommand(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("fetched %d commands, want 10", n)
	}
	if ch.Fetched != 10 || ch.Posted != 10 {
		t.Fatalf("stats: posted=%d fetched=%d", ch.Posted, ch.Fetched)
	}
}

func TestChannelQueueDepthBound(t *testing.T) {
	k := sim.New()
	pcie := NewPCIe(k, DefaultPCIe())
	ch := NewChannel(k, pcie, CommandBytes16)
	for i := 0; i < QueueDepth; i++ {
		if !ch.Post(Command{}) {
			t.Fatalf("post %d rejected below depth", i)
		}
	}
	if ch.Post(Command{}) {
		t.Fatal("post beyond queue depth accepted")
	}
}

func TestCompletionDelivery(t *testing.T) {
	k := sim.New()
	pcie := NewPCIe(k, DefaultPCIe())
	ch := NewChannel(k, pcie, CommandBytes16)
	ch.PushCompletions([]Completion{{Kind: CompAcked, Flow: 2, Seq: 777}})
	if _, ok := ch.PopCompletion(); ok {
		t.Fatal("completion visible before DMA")
	}
	k.Run(300)
	comp, ok := ch.PopCompletion()
	if !ok || comp.Flow != 2 || comp.Seq != 777 {
		t.Fatalf("completion = %+v, %v", comp, ok)
	}
}

func TestPCIeBandwidthSerializes(t *testing.T) {
	k := sim.New()
	pcie := NewPCIe(k, PCIeConfig{GBps: 13, LatencyNS: 400, TLPOverhead: 24})
	// 52 KB at 52 B/cycle = 1000+ cycles of occupancy; two transfers
	// must serialize.
	d1 := pcie.TransferToDevice(52_000)
	d2 := pcie.TransferToDevice(52_000)
	if d2-d1 < 900 {
		t.Fatalf("transfers did not serialize: %d then %d", d1, d2)
	}
	// Directions are independent.
	d3 := pcie.TransferToHost(52)
	if d3 > d1 {
		t.Fatalf("toHost blocked by toDevice traffic: %d vs %d", d3, d1)
	}
	if pcie.BytesToDevice != 104_000 || pcie.BytesToHost != 52 {
		t.Fatalf("byte accounting: %d / %d", pcie.BytesToDevice, pcie.BytesToHost)
	}
}

func TestCommandWidthChangesFetchCost(t *testing.T) {
	// The §6 observation: halving the command size halves the PCIe
	// bytes per fetched batch.
	k := sim.New()
	p16 := NewPCIe(k, DefaultPCIe())
	ch16 := NewChannel(k, p16, CommandBytes16)
	p8 := NewPCIe(k, DefaultPCIe())
	ch8 := NewChannel(k, p8, CommandBytes8)
	for i := 0; i < 64; i++ {
		ch16.Post(Command{})
		ch8.Post(Command{})
	}
	ch16.TickDevice()
	ch8.TickDevice()
	if p16.BytesToDevice != 2*p8.BytesToDevice {
		t.Fatalf("bytes: 16B=%d 8B=%d", p16.BytesToDevice, p8.BytesToDevice)
	}
}
