package hostif

import "f4t/internal/sim"

// PCIe models the Gen3 x16 link between host memory and FtEngine: a
// serial byte resource per direction plus a fixed transaction latency.
// Fig 9 and Fig 16a are bounded by this resource (§5.1, §6).
type PCIe struct {
	k        *sim.Kernel
	toDevice *sim.ByteRate // host memory → device (command fetch, TX payload DMA)
	toHost   *sim.ByteRate // device → host memory (completions, RX payload DMA)
	latency  int64         // cycles per transaction (one direction)

	// Per-TLP overhead bytes charged on top of every discrete transfer —
	// header/framing of the PCIe transaction layer.
	tlpOverhead int64

	BytesToDevice int64
	BytesToHost   int64

	// TLP accounting: discrete transfers per direction and the wire bytes
	// they occupied including the per-TLP overhead. Together with the
	// payload byte counts these expose how much of the link each
	// direction's framing overhead eats (the §4.6 batching argument).
	TLPsToDevice      int64
	TLPsToHost        int64
	WireBytesToDevice int64
	WireBytesToHost   int64
}

// PCIeConfig parameterizes the link.
type PCIeConfig struct {
	GBps        int64 // effective per-direction bandwidth (GB/s)
	LatencyNS   int64 // one-way transaction latency
	TLPOverhead int64 // bytes charged per discrete transfer
}

// DefaultPCIe matches a Gen3 x16 slot: ~14 GB/s effective per direction,
// ~450 ns transaction latency [Neugebauer et al., SIGCOMM'18].
func DefaultPCIe() PCIeConfig {
	return PCIeConfig{GBps: 14, LatencyNS: 450, TLPOverhead: 24}
}

// NewPCIe builds the link model.
func NewPCIe(k *sim.Kernel, cfg PCIeConfig) *PCIe {
	return &PCIe{
		k:           k,
		toDevice:    sim.GBpsRate(cfg.GBps),
		toHost:      sim.GBpsRate(cfg.GBps),
		latency:     sim.NSToCycles(cfg.LatencyNS),
		tlpOverhead: cfg.TLPOverhead,
	}
}

// TransferToDevice reserves a host→device transfer of n bytes and returns
// the completion cycle.
func (p *PCIe) TransferToDevice(n int64) int64 {
	p.BytesToDevice += n
	p.TLPsToDevice++
	p.WireBytesToDevice += n + p.tlpOverhead
	return p.toDevice.Reserve(p.k.Now(), n+p.tlpOverhead) + p.latency
}

// TransferToHost reserves a device→host transfer of n bytes and returns
// the completion cycle.
func (p *PCIe) TransferToHost(n int64) int64 {
	p.BytesToHost += n
	p.TLPsToHost++
	p.WireBytesToHost += n + p.tlpOverhead
	return p.toHost.Reserve(p.k.Now(), n+p.tlpOverhead) + p.latency
}

// BacklogToDevice returns queued host→device cycles (congestion signal).
func (p *PCIe) BacklogToDevice() int64 { return p.toDevice.Backlog(p.k.Now()) }

// BacklogToHost returns queued device→host cycles.
func (p *PCIe) BacklogToHost() int64 { return p.toHost.Backlog(p.k.Now()) }

// Utilization returns busy fractions for both directions.
func (p *PCIe) Utilization() (toDev, toHost float64) {
	now := p.k.Now()
	if now == 0 {
		return 0, 0
	}
	return float64(p.toDevice.BusyCycles()) / float64(now),
		float64(p.toHost.BusyCycles()) / float64(now)
}
