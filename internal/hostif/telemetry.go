package hostif

import (
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// Instrument registers the PCIe link's byte/TLP accounting and live
// backlog under prefix (e.g. "eng_a.pcie"). Safe on a nil registry.
func (p *PCIe) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+".bytes_to_device", func() int64 { return p.BytesToDevice })
	reg.Gauge(prefix+".bytes_to_host", func() int64 { return p.BytesToHost })
	reg.Gauge(prefix+".tlps_to_device", func() int64 { return p.TLPsToDevice })
	reg.Gauge(prefix+".tlps_to_host", func() int64 { return p.TLPsToHost })
	reg.Gauge(prefix+".wire_bytes_to_device", func() int64 { return p.WireBytesToDevice })
	reg.Gauge(prefix+".wire_bytes_to_host", func() int64 { return p.WireBytesToHost })
	reg.Gauge(prefix+".backlog_to_device", func() int64 { return p.BacklogToDevice() })
	reg.Gauge(prefix+".backlog_to_host", func() int64 { return p.BacklogToHost() })
}

// Instrument registers the channel's command/completion counts and queue
// depths under prefix (e.g. "eng_a.ch0"). Safe on a nil registry.
func (c *Channel) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+".posted", func() int64 { return c.Posted })
	reg.Gauge(prefix+".fetched", func() int64 { return c.Fetched })
	reg.Gauge(prefix+".completed", func() int64 { return c.Completed })
	reg.Gauge(prefix+".host_backlog", func() int64 { return int64(c.HostBacklog()) })
	reg.Gauge(prefix+".device_backlog", func() int64 { return int64(c.DeviceBacklog()) })
}

// SetTracer attaches a trace ring; command-fetch and completion DMA
// transfers emit spans on virtual thread tid covering request → DMA
// completion (so the span length is queueing + serialization + PCIe
// latency), with the batch size as argument.
func (c *Channel) SetTracer(trc *telemetry.Trace, tid int32) {
	c.trc = trc
	c.tid = tid
}

// traceDMA records one DMA span. Called only with a tracer attached.
func (c *Channel) traceDMA(name string, startCycle, doneCycle int64, batch int) {
	c.trc.Span("hostif", name, c.tid, startCycle*sim.CycleNS, doneCycle*sim.CycleNS, int64(batch))
}
