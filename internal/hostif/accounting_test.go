package hostif

import (
	"testing"

	"f4t/internal/sim"
)

// The PCIe byte accounting underpins the §5.1/§6 bandwidth arguments, so
// it must match hand-computed totals exactly: every discrete transfer is
// one TLP, and wire bytes are payload plus the fixed per-TLP overhead.

func TestPCIeTransferAccounting(t *testing.T) {
	k := sim.New()
	p := NewPCIe(k, DefaultPCIe()) // 24 B TLP overhead

	p.TransferToDevice(100)
	if p.BytesToDevice != 100 || p.TLPsToDevice != 1 || p.WireBytesToDevice != 124 {
		t.Fatalf("to-device after one 100 B transfer: bytes=%d tlps=%d wire=%d, want 100/1/124",
			p.BytesToDevice, p.TLPsToDevice, p.WireBytesToDevice)
	}

	p.TransferToDevice(0) // a zero-byte transaction still costs a TLP header
	if p.BytesToDevice != 100 || p.TLPsToDevice != 2 || p.WireBytesToDevice != 148 {
		t.Fatalf("to-device after empty transfer: bytes=%d tlps=%d wire=%d, want 100/2/148",
			p.BytesToDevice, p.TLPsToDevice, p.WireBytesToDevice)
	}

	p.TransferToHost(64)
	p.TransferToHost(64)
	if p.BytesToHost != 128 || p.TLPsToHost != 2 || p.WireBytesToHost != 2*(64+24) {
		t.Fatalf("to-host after two 64 B transfers: bytes=%d tlps=%d wire=%d, want 128/2/176",
			p.BytesToHost, p.TLPsToHost, p.WireBytesToHost)
	}

	// Directions are independent resources.
	if p.TLPsToDevice != 2 || p.TLPsToHost != 2 {
		t.Fatalf("directions bled into each other: toDev=%d toHost=%d", p.TLPsToDevice, p.TLPsToHost)
	}
}

func TestPCIeOverheadConfigurable(t *testing.T) {
	k := sim.New()
	p := NewPCIe(k, PCIeConfig{GBps: 14, LatencyNS: 450, TLPOverhead: 0})
	p.TransferToDevice(100)
	if p.WireBytesToDevice != 100 {
		t.Fatalf("zero-overhead wire bytes = %d, want 100", p.WireBytesToDevice)
	}
}

// drainChannel steps the kernel and fetch engine until the device queue
// stops growing, returning after the pipeline is fully drained.
func drainChannel(k *sim.Kernel, ch *Channel, cycles int) {
	for i := 0; i < cycles; i++ {
		k.Step()
		ch.TickDevice()
	}
}

// TestChannelFetchBatchWireBytes pins the doorbell-batching economics of
// §4.6: 20 posted commands are fetched as one full 16-command batch plus
// one 4-command remainder, and the wire cost of each batch is
// batch*CommandBytes16 + one TLP overhead — NOT 20 separate TLPs.
func TestChannelFetchBatchWireBytes(t *testing.T) {
	k := sim.New()
	p := NewPCIe(k, DefaultPCIe())
	ch := NewChannel(k, p, CommandBytes16)

	for i := 0; i < 20; i++ {
		if !ch.Post(Command{Op: OpSend, Flow: 1, Ptr: 64}) {
			t.Fatal("post failed")
		}
	}
	ch.TickDevice() // both batches issue immediately (pipeline depth 4)
	drainChannel(k, ch, 400)

	if ch.Fetched != 20 {
		t.Fatalf("fetched = %d, want 20", ch.Fetched)
	}
	// Batch 1: 16 cmds -> 16*16 + 24 = 280 wire bytes.
	// Batch 2:  4 cmds ->  4*16 + 24 =  88 wire bytes.
	if p.TLPsToDevice != 2 {
		t.Fatalf("TLPs = %d, want 2 (16+4 batching)", p.TLPsToDevice)
	}
	if p.BytesToDevice != 20*CommandBytes16 {
		t.Fatalf("payload bytes = %d, want %d", p.BytesToDevice, 20*CommandBytes16)
	}
	if want := int64(16*CommandBytes16 + 24 + 4*CommandBytes16 + 24); p.WireBytesToDevice != want {
		t.Fatalf("wire bytes = %d, want %d", p.WireBytesToDevice, want)
	}

	// The naive one-TLP-per-command encoding would have cost
	// 20*(16+24) = 800 wire bytes; batching must beat it.
	if p.WireBytesToDevice >= 20*(CommandBytes16+24) {
		t.Fatalf("batching saved nothing: %d wire bytes", p.WireBytesToDevice)
	}
}

// TestChannelCompletionWireBytes does the same arithmetic for the
// device→host direction: one PushCompletions call is one TLP regardless
// of batch size.
func TestChannelCompletionWireBytes(t *testing.T) {
	k := sim.New()
	p := NewPCIe(k, DefaultPCIe())
	ch := NewChannel(k, p, CommandBytes16)

	comps := make([]Completion, 7)
	ch.PushCompletions(comps)
	ch.PushCompletions(comps[:1])
	drainChannel(k, ch, 400)

	if ch.Completed != 8 {
		t.Fatalf("completed = %d, want 8", ch.Completed)
	}
	if p.TLPsToHost != 2 {
		t.Fatalf("TLPs to host = %d, want 2", p.TLPsToHost)
	}
	if p.BytesToHost != 8*CompletionBytes {
		t.Fatalf("payload bytes = %d, want %d", p.BytesToHost, 8*CompletionBytes)
	}
	if want := int64(7*CompletionBytes + 24 + 1*CompletionBytes + 24); p.WireBytesToHost != want {
		t.Fatalf("wire bytes = %d, want %d", p.WireBytesToHost, want)
	}

	// Empty pushes must not burn a TLP.
	ch.PushCompletions(nil)
	if p.TLPsToHost != 2 {
		t.Fatalf("empty PushCompletions issued a TLP")
	}
}

// TestChannelSmallCommandEncoding verifies the §6 optimization halves the
// command payload on the wire: same batch, smaller TLPs.
func TestChannelSmallCommandEncoding(t *testing.T) {
	wire := func(cmdBytes int64) int64 {
		k := sim.New()
		p := NewPCIe(k, DefaultPCIe())
		ch := NewChannel(k, p, cmdBytes)
		for i := 0; i < 16; i++ {
			ch.Post(Command{Op: OpSend, Flow: 1, Ptr: 64})
		}
		ch.TickDevice()
		drainChannel(k, ch, 400)
		return p.WireBytesToDevice
	}
	w16, w8 := wire(CommandBytes16), wire(CommandBytes8)
	if w16 != 16*CommandBytes16+24 || w8 != 16*CommandBytes8+24 {
		t.Fatalf("wire bytes: 16B encoding %d (want %d), 8B encoding %d (want %d)",
			w16, 16*CommandBytes16+24, w8, 16*CommandBytes8+24)
	}
	if w8 >= w16 {
		t.Fatalf("8 B encoding (%d wire bytes) did not beat 16 B (%d)", w8, w16)
	}
}
