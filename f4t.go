// Package f4t is a full-system reproduction of "F4T: A Fast and Flexible
// FPGA-based Full-stack TCP Acceleration Framework" (ISCA 2023) as a
// discrete-time simulation: a cycle-level model of the FtEngine hardware
// (flow processing cores, scheduler, memory manager, data path), the F4T
// software stack (library, runtime, per-thread command queues over a
// PCIe model), a complete TCP protocol engine with pluggable
// congestion-control "FPU programs", the Linux-stack baseline, and the
// full evaluation harness that regenerates every figure and table of the
// paper's evaluation.
//
// Quick start:
//
//	tb := f4t.NewTestbed(f4t.HostA(2), f4t.HostB(2))
//	var srv f4t.Conn
//	server := tb.B.Threads()[0]
//	server.Listen(80)
//	client := tb.A.Threads()[0]
//	conn := client.Dial(0, 80)
//	tb.Run(1_000_000) // one million 4 ns cycles = 4 ms
//
// See examples/ for runnable programs and internal/exp for the
// experiment runners behind cmd/f4tbench.
package f4t

import (
	"f4t/internal/core"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/engine/memmgr"
	"f4t/internal/host"
	"f4t/internal/sim"
)

// Conn is one TCP connection as seen by an application thread. Socket
// operations charge simulated CPU time and may return 0 when the core
// or buffers are busy — retry on a later cycle, as with a non-blocking
// socket.
type Conn = host.Conn

// Thread is one application thread pinned to a CPU core, owning a
// command/completion queue pair to the engine (§4.6: per-thread queues,
// no sharing, no locks).
type Thread = host.Thread

// ConnEvent is an epoll-style readiness notification.
type ConnEvent = host.ConnEvent

// Readiness event kinds.
const (
	EvConnected = host.EvConnected
	EvAccepted  = host.EvAccepted
	EvReadable  = host.EvReadable
	EvWritable  = host.EvWritable
	EvHangup    = host.EvHangup
)

// HostConfig describes one F4T host (addresses, cores, hardware design
// point, CPU cost table).
type HostConfig = core.HostConfig

// EngineConfig selects the FtEngine design point (FPC count, memory
// kind, congestion-control program, command width...).
type EngineConfig = engine.Config

// Memory kinds for the TCB store (§4.7).
const (
	MemoryDDR = memmgr.DDR
	MemoryHBM = memmgr.HBM
)

// DefaultEngineConfig is the paper's reference design: 8 FPCs × 128
// flows, HBM, event coalescing, 16 B commands.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// DefaultCosts is the calibrated CPU cost table (see internal/cpu for
// each constant's derivation from the paper).
func DefaultCosts() cpu.Costs { return cpu.DefaultCosts() }

// HostA returns the standard node-A host configuration with the given
// core count.
func HostA(cores int) HostConfig { return core.DefaultHostA(cores) }

// HostB returns the standard node-B host configuration.
func HostB(cores int) HostConfig { return core.DefaultHostB(cores) }

// Testbed is two F4T hosts direct-connected by a 100 Gbps link — the
// evaluation topology of §5.
type Testbed struct {
	inner *core.Testbed
	// A and B are the two hosts.
	A, B *core.System
}

// NewTestbed builds the two-node testbed.
func NewTestbed(a, b HostConfig) *Testbed {
	tb := core.NewTestbed(a, b, 100)
	return &Testbed{inner: tb, A: tb.A, B: tb.B}
}

// Kernel exposes the simulation clock.
func (t *Testbed) Kernel() *sim.Kernel { return t.inner.K }

// Run advances the simulation by n cycles (4 ns each).
func (t *Testbed) Run(n int64) { t.inner.K.Run(n) }

// RunUntil advances until the predicate holds or the budget is spent,
// reporting whether it held.
func (t *Testbed) RunUntil(pred func() bool, budget int64) bool {
	return t.inner.K.RunUntil(pred, budget)
}

// NowNS returns the simulated time in nanoseconds.
func (t *Testbed) NowNS() int64 { return t.inner.K.NowNS() }
