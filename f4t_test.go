package f4t_test

import (
	"testing"

	"f4t"
)

// TestPublicAPIQuickstart exercises the documented public surface the
// way examples/quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	tb := f4t.NewTestbed(f4t.HostA(2), f4t.HostB(2))
	server := tb.B.Threads()[0]
	server.Listen(80)
	client := tb.A.Threads()[0]
	conn := client.Dial(0, 80)
	if conn == nil {
		t.Fatal("dial returned nil")
	}
	if !tb.RunUntil(conn.Established, 2_000_000) {
		t.Fatal("handshake timed out")
	}

	const total = 32 * 1024
	sent, received := 0, 0
	var srvConn f4t.Conn
	ok := tb.RunUntil(func() bool {
		for _, ev := range server.Poll() {
			switch ev.Kind {
			case f4t.EvAccepted:
				srvConn = ev.Conn
			case f4t.EvReadable:
				received += ev.Conn.TryRecv(1 << 20)
			}
		}
		if srvConn != nil {
			received += srvConn.TryRecv(1 << 20)
		}
		client.Poll()
		if sent < total {
			sent += conn.TrySend(total-sent, nil)
		}
		return received >= total
	}, 20_000_000)
	if !ok {
		t.Fatalf("transfer stalled: %d/%d", received, total)
	}

	conn.Close()
	closedSrv := false
	if !tb.RunUntil(func() bool {
		for _, ev := range server.Poll() {
			if ev.Kind == f4t.EvHangup && !closedSrv {
				closedSrv = true
				srvConn.Close()
			}
		}
		client.Poll()
		return conn.Closed()
	}, 50_000_000) {
		t.Fatal("close timed out")
	}
	if tb.NowNS() <= 0 {
		t.Fatal("clock did not advance")
	}
}

// TestPublicAPIConfigSurface checks the exported configuration knobs.
func TestPublicAPIConfigSurface(t *testing.T) {
	ec := f4t.DefaultEngineConfig()
	if ec.NumFPCs != 8 || ec.SlotsPerFPC != 128 || ec.MaxFlows != 65536 {
		t.Fatalf("reference design changed: %+v", ec)
	}
	if ec.Memory != f4t.MemoryHBM {
		t.Fatal("default memory is not HBM")
	}
	costs := f4t.DefaultCosts()
	if costs.F4TSendCost() <= 0 {
		t.Fatal("cost table empty")
	}
	a, b := f4t.HostA(4), f4t.HostB(4)
	if a.IP == b.IP || a.MAC == b.MAC {
		t.Fatal("host identities collide")
	}
}

// TestPublicAPICustomDesign runs a testbed on a non-default design point
// (1 FPC, DDR, CUBIC) to confirm the configuration surface is honoured.
func TestPublicAPICustomDesign(t *testing.T) {
	a := f4t.HostA(1)
	ec := f4t.DefaultEngineConfig()
	ec.NumFPCs = 1
	ec.SlotsPerFPC = 16
	ec.Memory = f4t.MemoryDDR
	ec.Alg = "cubic"
	a.Engine = ec
	b := f4t.HostB(1)
	b.Engine = ec

	tb := f4t.NewTestbed(a, b)
	tb.B.Threads()[0].Listen(80)
	conn := tb.A.Threads()[0].Dial(0, 80)
	if !tb.RunUntil(conn.Established, 3_000_000) {
		t.Fatal("handshake on custom design timed out")
	}
	if got := len(tb.A.Engine.FPCs()); got != 1 {
		t.Fatalf("FPC count = %d", got)
	}
}
