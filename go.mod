module f4t

go 1.22
