// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation (§5, §6). Each runs the corresponding experiment at reduced
// sweep size and reports the headline metric through b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation and
// cmd/f4tbench prints the full tables.
package f4t_test

import (
	"testing"

	"f4t/internal/exp"
)

// runTable executes a table-producing experiment once per benchmark
// iteration (the iteration count stays 1 for these macro-benchmarks —
// the metric of interest is the simulated-system throughput, not Go
// wall time).
func runTable(b *testing.B, fn func() *exp.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab := fn()
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig01NginxLinux reproduces Figure 1: Nginx on Linux, the CPU
// share of TCP and the request rate.
func BenchmarkFig01NginxLinux(b *testing.B) {
	runTable(b, func() *exp.Table { return exp.Fig1(true) })
}

// BenchmarkFig02RMWStalls reproduces Figure 2: the bulk-transfer gap
// between the stalling (w-RMW) and stall-free (w/o-RMW) designs.
func BenchmarkFig02RMWStalls(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		wr := exp.DriveFPC(exp.WRMWDesign(), 1, 128, 100_000)
		wo := exp.DriveFPC(exp.WoRMWDesign(), 1, 128, 100_000)
		gap = wo / wr
	}
	b.ReportMetric(gap, "gap-x")
}

// BenchmarkFig07bResources reproduces Figure 7b: the resource model.
func BenchmarkFig07bResources(b *testing.B) {
	runTable(b, exp.Fig7b)
}

// BenchmarkFig08Bulk reproduces Figure 8a's headline point: F4T bulk
// 128 B with two cores (paper: 87 Gbps).
func BenchmarkFig08Bulk(b *testing.B) {
	var res exp.TransferResult
	for i := 0; i < b.N; i++ {
		res = exp.TransferPoint("f4t", false, 128, 2, nil)
	}
	b.ReportMetric(res.GoodputGbps, "Gbps")
	b.ReportMetric(res.Mrps, "Mrps")
}

// BenchmarkFig08BulkLinux is the Linux comparator (paper: ~2 Gbps at 2
// cores).
func BenchmarkFig08BulkLinux(b *testing.B) {
	var res exp.TransferResult
	for i := 0; i < b.N; i++ {
		res = exp.TransferPoint("linux", false, 128, 2, nil)
	}
	b.ReportMetric(res.GoodputGbps, "Gbps")
}

// BenchmarkFig08RoundRobin reproduces Figure 8b: low-locality traffic,
// F4T one core (paper: 35 Gbps).
func BenchmarkFig08RoundRobin(b *testing.B) {
	var res exp.TransferResult
	for i := 0; i < b.N; i++ {
		res = exp.TransferPoint("f4t", true, 128, 1, nil)
	}
	b.ReportMetric(res.GoodputGbps, "Gbps")
}

// BenchmarkFig09RequestSizes reproduces Figure 9's PCIe-bound point:
// 16 B requests on 16 cores (paper: 396 Mrps).
func BenchmarkFig09RequestSizes(b *testing.B) {
	var res exp.TransferResult
	for i := 0; i < b.N; i++ {
		res = exp.TransferPoint("f4t", false, 16, 16, nil)
	}
	b.ReportMetric(res.Mrps, "Mrps")
}

// BenchmarkFig10Nginx reproduces Figure 10's saturation comparison:
// F4T vs Linux request rate at one core, 64 flows (paper: 2.6–2.8×).
func BenchmarkFig10Nginx(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		f := exp.NginxPoint("f4t", 1, 64)
		l := exp.NginxPoint("linux", 1, 64)
		ratio = f.Krps / l.Krps
	}
	b.ReportMetric(ratio, "speedup-x")
}

// BenchmarkFig11Breakdown reproduces Figure 11: the app-cycle ratio
// (paper: 2.8×).
func BenchmarkFig11Breakdown(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		f := exp.NginxPoint("f4t", 1, 64)
		l := exp.NginxPoint("linux", 1, 64)
		ratio = f.Breakdown["app"] / l.Breakdown["app"]
	}
	b.ReportMetric(ratio, "app-ratio-x")
}

// BenchmarkFig12Latency reproduces Figure 12: Nginx median latency,
// Linux over F4T (paper: 3.7× median, 26× p99).
func BenchmarkFig12Latency(b *testing.B) {
	var med, p99 float64
	for i := 0; i < b.N; i++ {
		f := exp.NginxPoint("f4t", 1, 64)
		l := exp.NginxPoint("linux", 1, 64)
		med = float64(l.MedianNS) / float64(f.MedianNS)
		p99 = float64(l.P99NS) / float64(f.P99NS)
	}
	b.ReportMetric(med, "median-x")
	b.ReportMetric(p99, "p99-x")
}

// BenchmarkFig13Connectivity reproduces Figure 13's crossover point:
// the echo rate at 4,096 flows (past the 1,024-flow FPC capacity) for
// DDR vs HBM TCB stores.
func BenchmarkFig13Connectivity(b *testing.B) {
	var ddr, hbm float64
	for i := 0; i < b.N; i++ {
		ddr, _ = exp.EchoPoint("f4t-ddr", 4096)
		hbm, _ = exp.EchoPoint("f4t-hbm", 4096)
	}
	b.ReportMetric(ddr, "ddr-Mrps")
	b.ReportMetric(hbm, "hbm-Mrps")
}

// BenchmarkFig14Cwnd reproduces Figure 14: congestion-window sawtooth
// agreement between F4T and the independent reference.
func BenchmarkFig14Cwnd(b *testing.B) {
	var epochs int
	for i := 0; i < b.N; i++ {
		tr := exp.F4TCwndTrace("newreno", 2000, 3_000_000, 25_000)
		epochs = tr.LossEpochs()
	}
	b.ReportMetric(float64(epochs), "loss-epochs")
}

// BenchmarkFig15Versatility reproduces Figure 15: the F4T event rate at
// an FPU latency of 68 cycles (Vegas depth) — paper: flat 125 M/s.
func BenchmarkFig15Versatility(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = exp.DriveFPC(exp.F4TFPCDesign(68, "vegas"), 64, 128, 100_000)
	}
	b.ReportMetric(rate/1e6, "Mevents/s")
}

// BenchmarkFig16aHeaderScaling reproduces Figure 16a at 8 cores.
func BenchmarkFig16aHeaderScaling(b *testing.B) {
	runTable(b, func() *exp.Table { return exp.Fig16a(true) })
}

// BenchmarkFig16bAblation reproduces Figure 16b: the design ablation
// (Baseline → 1FPC → 1FPC-C → F4T).
func BenchmarkFig16bAblation(b *testing.B) {
	runTable(b, func() *exp.Table { return exp.Fig16b(true) })
}

// BenchmarkTable54Algorithms reproduces the §5.4 result: all three CC
// programs reach the same peak rate despite 14/41/68-cycle pipelines.
func BenchmarkTable54Algorithms(b *testing.B) {
	runTable(b, func() *exp.Table { return exp.AlgorithmTable(true) })
}

// BenchmarkAblationFPCScaling isolates the parallel-FPC contribution
// (§4.4.2) on round-robin traffic.
func BenchmarkAblationFPCScaling(b *testing.B) {
	runTable(b, func() *exp.Table { return exp.AblationFPCScaling(true) })
}

// BenchmarkAblationCoalescing isolates the event-coalescing contribution
// (§4.4.1) on bulk traffic.
func BenchmarkAblationCoalescing(b *testing.B) {
	runTable(b, func() *exp.Table { return exp.AblationCoalescing(true) })
}

// BenchmarkAblationTCBCache sweeps the memory manager's TCB cache on the
// DDR echo workload (§4.3.1).
func BenchmarkAblationTCBCache(b *testing.B) {
	runTable(b, func() *exp.Table { return exp.AblationTCBCache(true) })
}
