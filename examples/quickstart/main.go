// Quickstart: bring up the two-node F4T testbed, connect, exchange
// data, and close — the smallest complete use of the public API.
package main

import (
	"fmt"

	"f4t"
)

func main() {
	// Two hosts, two cores each, direct-connected by a 100 Gbps link.
	tb := f4t.NewTestbed(f4t.HostA(2), f4t.HostB(2))

	// Host B listens on port 80 with its first thread.
	server := tb.B.Threads()[0]
	server.Listen(80)

	// Host A dials from its first thread. remoteIdx 0 = host B.
	client := tb.A.Threads()[0]
	conn := client.Dial(0, 80)

	// Let the handshake complete (cycles are 4 ns each).
	if !tb.RunUntil(conn.Established, 1_000_000) {
		panic("handshake did not complete")
	}
	fmt.Printf("connected after %d ns\n", tb.NowNS())

	// Send 64 KB; the engine coalesces the requests into MSS segments.
	const total = 64 * 1024
	sent := 0
	received := 0
	var srvConn f4t.Conn
	for received < total {
		// Server side: accept + drain via readiness events.
		for _, ev := range server.Poll() {
			switch ev.Kind {
			case f4t.EvAccepted:
				srvConn = ev.Conn
			case f4t.EvReadable:
				received += ev.Conn.TryRecv(1 << 20)
			}
		}
		if srvConn != nil && srvConn.Available() > 0 {
			received += srvConn.TryRecv(1 << 20)
		}
		// Client side: keep the pipe full.
		client.Poll()
		if sent < total {
			sent += conn.TrySend(total-sent, nil)
		}
		tb.Run(100)
	}
	fmt.Printf("transferred %d bytes in %d ns (%.1f Gbps goodput)\n",
		received, tb.NowNS(), float64(received)*8/float64(tb.NowNS()))

	conn.Close()
	tb.RunUntil(conn.Closed, 10_000_000)
	fmt.Println("closed cleanly")
}
