// Echo64k: the connectivity story (§5.3) — thousands of concurrent
// ping-pong connections forcing TCB migration between the FPCs' SRAM
// and device DRAM, with the scheduler/memory-manager statistics that
// show the machinery at work.
package main

import (
	"flag"
	"fmt"

	"f4t/internal/apps"
	"f4t/internal/core"
	"f4t/internal/engine"
	"f4t/internal/engine/memmgr"
)

func main() {
	flows := flag.Int("flows", 8192, "concurrent echo connections")
	useHBM := flag.Bool("hbm", true, "use HBM for the TCB store (else DDR4)")
	flag.Parse()

	mem := memmgr.DDR
	if *useHBM {
		mem = memmgr.HBM
	}
	cfgA := core.DefaultHostA(8)
	cfgB := core.DefaultHostB(8)
	for _, c := range []*core.HostConfig{&cfgA, &cfgB} {
		ec := engine.DefaultConfig()
		ec.Memory = mem
		c.Engine = ec
	}
	tb := core.NewTestbed(cfgA, cfgB, 100)

	srv := apps.NewEchoServer(tb.B.Threads(), 9001, 128)
	tb.K.Register(srv)
	tb.K.Run(2_000)
	cli := apps.NewEchoClient(tb.K, tb.A.Threads(), 0, 9001, 128, *flows/8)
	tb.K.Register(cli)

	// Ramp up all connections.
	for i := 0; i < 1000 && !cli.Ready(); i++ {
		tb.K.Run(50_000)
	}
	fmt.Printf("established %d connections at t=%.1f ms\n", cli.Established(), float64(tb.K.NowNS())/1e6)

	// Measure a steady-state window.
	tb.K.Run(250_000)
	cli.Requests.Snapshot(tb.K.Now())
	tb.K.Run(1_500_000)
	rate := cli.Requests.RatePerSecond(tb.K.Now())

	memKind := "DDR4"
	if *useHBM {
		memKind = "HBM"
	}
	fmt.Printf("echo rate: %.1f Mrps with %s TCB store\n", rate/1e6, memKind)
	fmt.Printf("p50 round trip: %.1f us, p99: %.1f us\n",
		float64(cli.Latency.Median())/1e3, float64(cli.Latency.P99())/1e3)

	for _, side := range []struct {
		name string
		sys  *core.System
	}{{"A", tb.A}, {"B", tb.B}} {
		s := side.sys.Engine.Scheduler()
		m := side.sys.Engine.Mem()
		fmt.Printf("engine %s: %5d flows total, %5d resident in DRAM; %d migrations, %d swap-ins, %d DRAM cache hits / %d misses\n",
			side.name, side.sys.Engine.FlowCount(), m.FlowCount(),
			s.Migrations.Total(), s.SwapIns.Total(), m.CacheHits.Total(), m.CacheMiss.Total())
	}
}
