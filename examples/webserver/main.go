// Webserver: the paper's headline use case (§5.2) — an Nginx-style HTTP
// server running unmodified on the F4T stack and on the Linux software
// stack, with the CPU-cycle breakdown that motivates the offload.
package main

import (
	"fmt"
	"sort"

	"f4t/internal/exp"
)

func main() {
	fmt.Println("HTTP server, 1 core, 64 keepalive connections, 256 B responses")
	fmt.Println()
	for _, stack := range []string{"linux", "f4t"} {
		res := exp.NginxPoint(stack, 1, 64)
		fmt.Printf("%-6s: %6.1f Krps   median %6.1f us   p99 %7.1f us\n",
			stack, res.Krps, float64(res.MedianNS)/1e3, float64(res.P99NS)/1e3)
		cats := make([]string, 0, len(res.Breakdown))
		for c := range res.Breakdown {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for _, c := range cats {
			if res.Breakdown[c] > 0.001 {
				fmt.Printf("        %-14s %5.1f%%\n", c, res.Breakdown[c]*100)
			}
		}
		fmt.Println()
	}
	fmt.Println("The F4T run removes the TCP share entirely and returns those")
	fmt.Println("cycles to the application (paper: 2.8x more app cycles, 64% saved).")
}
