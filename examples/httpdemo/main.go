// Httpdemo runs an UNMODIFIED net/http server and client over the
// simulated network: two software-stack hosts attached to a two-router
// dumbbell, with the netapi facade translating blocking net.Conn calls
// into the simulator's cooperative scheduling. Nothing in the HTTP
// layer knows it is not talking to a real network.
//
//	go run ./examples/httpdemo            # three GETs over the dumbbell
//	go run ./examples/httpdemo -pcap d.pcapng   # plus a Wireshark capture
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"f4t/internal/netapi"
	"f4t/internal/netsim"
	"f4t/internal/pcap"
	"f4t/internal/sim"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

func main() {
	pcapPath := flag.String("pcap", "", "write the access-link capture to this pcapng file")
	flag.Parse()

	// One serial kernel; hosts on islands 0/1, routers on 2/3 (island
	// numbers only matter when the same rig runs sharded).
	k := sim.New()
	ipA, ipB := wire.MakeAddr(10, 1, 0, 1), wire.MakeAddr(10, 1, 0, 2)
	macA, macB := wire.MAC{2, 1, 0, 0, 0, 1}, wire.MAC{2, 1, 0, 0, 0, 2}
	topo := netsim.NewDumbbellOn(k, [2]int{2, 3}, 100, 2_000, []netsim.NodeSpec{
		{Addr: ipA, MAC: macA, Island: 0, RouterIdx: 0, Gbps: 100, PropNS: 600},
		{Addr: ipB, MAC: macB, Island: 1, RouterIdx: 1, Gbps: 100, PropNS: 600},
	}, netsim.DropTail(0), 7)

	var capture *pcap.Capture
	if *pcapPath != "" {
		capture = pcap.New()
		capture.TapPipe(topo.Uplinks[0], "a.uplink")
		capture.TapPipe(topo.Uplinks[1], "b.uplink")
	}

	// Two soft hosts behind the facade. NewHostStack owns the endpoint's
	// tick; we only wire the topology's TX/RX around it.
	mk := func(island int, ip wire.Addr, mac wire.MAC, seed uint64) *netapi.HostStack {
		st := netapi.NewHostStack(k, island, stack.Options{
			IP: ip, MAC: mac, Cfg: tcpproc.DefaultConfig(), Alg: "newreno", Seed: seed,
		}, netapi.Options{})
		return st
	}
	hostA := mk(0, ipA, macA, 11)
	hostB := mk(1, ipB, macB, 22)
	hostA.SetTx(topo.NodeTX(0))
	hostB.SetTx(topo.NodeTX(1))
	topo.SetNodeSink(0, hostA.DeliverPacket)
	topo.SetNodeSink(1, hostB.DeliverPacket)
	hostA.Endpoint().LearnPeer(ipB, macB)
	hostB.Endpoint().LearnPeer(ipA, macA)

	// Server: stock net/http on host B.
	mux := http.NewServeMux()
	mux.HandleFunc("/hello", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello from a simulated host at t=%d ns\n", hostB.NowNS())
	})
	hostB.Go(func() {
		ln, err := hostB.Listen(80)
		if err != nil {
			panic(err)
		}
		http.Serve(ln, mux)
	})

	// Client: stock net/http on host A; only the dialer is ours.
	var done atomic.Bool
	hostA.Go(func() {
		defer done.Store(true)
		client := &http.Client{Transport: &http.Transport{DialContext: hostA.DialContext}}
		for i := 0; i < 3; i++ {
			resp, err := client.Get("http://10.1.0.2:80/hello")
			if err != nil {
				fmt.Println("GET failed:", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			fmt.Printf("GET %d at t=%-8d ns: %s", i+1, hostA.NowNS(), body)
		}
	})

	hostB.Settle()
	hostA.Settle()
	for !done.Load() && k.Now() < 100_000_000 {
		k.Run(20_000)
	}
	fmt.Printf("done after %.3f ms simulated\n", float64(k.NowNS())/1e6)

	if capture != nil {
		if err := capture.WriteFile(*pcapPath); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %d frames to %s\n", capture.Frames(), *pcapPath)
	}
	hostA.Shutdown()
	hostB.Shutdown()
	hostA.Wait()
	hostB.Wait()
}
