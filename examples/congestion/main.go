// Congestion: the flexibility story (§5.4) — swap the congestion-control
// "FPU program" (NewReno, CUBIC, Vegas) and watch the window dynamics
// under injected loss, with the independent reference simulator as a
// cross-check (Fig 14).
package main

import (
	"flag"
	"fmt"

	"f4t/internal/exp"
)

func main() {
	alg := flag.String("alg", "cubic", "congestion control FPU program (newreno, cubic, vegas)")
	drop := flag.Int64("drop", 2000, "drop every Nth data packet")
	flag.Parse()

	fmt.Printf("single-flow bulk transfer, %s, dropping every %dth packet\n\n", *alg, *drop)

	tr := exp.F4TCwndTrace(*alg, *drop, 6_000_000, 50_000)
	fmt.Println("F4T engine congestion window (one column ≈ 16 KB):")
	plot(tr)
	fmt.Printf("\n%d loss epochs, mean cwnd %.0f KB\n", tr.LossEpochs(), tr.MeanCwnd()/1024)

	if ref, err := exp.RefCwndTrace(*alg, *drop, 24_000_000, 200_000); err == nil {
		fmt.Printf("reference simulator: %d loss epochs, mean cwnd %.0f KB\n",
			ref.LossEpochs(), ref.MeanCwnd()/1024)
	} else {
		fmt.Printf("reference simulator: %v\n", err)
	}
}

// plot renders the trace as a crude ASCII sawtooth.
func plot(tr exp.CwndTrace) {
	for i, c := range tr.Cwnd {
		if i%2 != 0 {
			continue
		}
		bar := int(c / 16384)
		if bar > 70 {
			bar = 70
		}
		fmt.Printf("%7.0fus |", float64(tr.AtNS[i])/1e3)
		for j := 0; j < bar; j++ {
			fmt.Print("#")
		}
		fmt.Println()
	}
}
